// Crash-safe checkpoint/resume tests for PoisonRecAttacker: a run that is
// killed and resumed from a checkpoint must continue bit-identically to
// one that never stopped — including under injected faults.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ppo.h"
#include "data/synthetic.h"
#include "rec/registry.h"

namespace poisonrec::core {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  Fixture()
      : environment(MakeLog(), rec::MakeRecommender("ItemPop").value(),
                    MakeEnvConfig()) {}

  static data::Dataset MakeLog() {
    data::SyntheticConfig cfg;
    cfg.num_users = 100;
    cfg.num_items = 80;
    cfg.num_interactions = 1000;
    cfg.seed = 3;
    return data::GenerateSynthetic(cfg);
  }

  static env::EnvironmentConfig MakeEnvConfig() {
    env::EnvironmentConfig cfg;
    cfg.num_attackers = 6;
    cfg.trajectory_length = 6;
    cfg.num_target_items = 3;
    cfg.num_candidate_originals = 20;
    cfg.seed = 11;
    return cfg;
  }

  static PoisonRecConfig MakeAttackerConfig() {
    PoisonRecConfig cfg;
    cfg.samples_per_step = 6;
    cfg.batch_size = 6;
    cfg.update_epochs = 2;
    cfg.policy.embedding_dim = 8;
    cfg.seed = 7;
    return cfg;
  }

  env::AttackEnvironment environment;
};

void ExpectStatsBitwiseEqual(const TrainStepStats& a, const TrainStepStats& b,
                             const char* context) {
  EXPECT_EQ(a.step, b.step) << context;
  EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward) << context;
  EXPECT_DOUBLE_EQ(a.max_reward, b.max_reward) << context;
  EXPECT_DOUBLE_EQ(a.min_reward, b.min_reward) << context;
  EXPECT_DOUBLE_EQ(a.best_reward_so_far, b.best_reward_so_far) << context;
  EXPECT_DOUBLE_EQ(a.loss, b.loss) << context;
  EXPECT_DOUBLE_EQ(a.target_click_ratio, b.target_click_ratio) << context;
  EXPECT_EQ(a.failed_queries, b.failed_queries) << context;
  EXPECT_EQ(a.retries, b.retries) << context;
  EXPECT_EQ(a.imputed_rewards, b.imputed_rewards) << context;
}

TEST(CheckpointTest, SaveThenLoadRoundTripsState) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  attacker.Train(2);
  const std::string path = TempPath("poisonrec_attacker_ckpt.bin");
  ASSERT_TRUE(attacker.SaveCheckpoint(path).ok());

  PoisonRecAttacker restored(&f.environment, Fixture::MakeAttackerConfig());
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  EXPECT_EQ(restored.steps_taken(), 2u);
  EXPECT_DOUBLE_EQ(restored.best_episode().reward,
                   attacker.best_episode().reward);
  ASSERT_EQ(restored.best_episode().trajectories.size(),
            attacker.best_episode().trajectories.size());
  std::remove(path.c_str());
}

TEST(CheckpointTest, KillAndResumeIsBitIdentical) {
  Fixture f_full;
  Fixture f_killed;
  const auto cfg = Fixture::MakeAttackerConfig();

  // Uninterrupted reference run: 6 steps.
  PoisonRecAttacker uninterrupted(&f_full.environment, cfg);
  const auto reference = uninterrupted.Train(6);

  // Run 3 steps, checkpoint, "crash", resume in a fresh attacker.
  const std::string path = TempPath("poisonrec_kill_resume_ckpt.bin");
  {
    PoisonRecAttacker first_process(&f_killed.environment, cfg);
    first_process.Train(3);
    ASSERT_TRUE(first_process.SaveCheckpoint(path).ok());
    // first_process is destroyed here — the "kill".
  }
  PoisonRecAttacker resumed(&f_killed.environment, cfg);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed.steps_taken(), 3u);
  const auto tail = resumed.Train(3);

  ASSERT_EQ(tail.size(), 3u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    ExpectStatsBitwiseEqual(reference[3 + i], tail[i], "resumed step");
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, KillAndResumeUnderFaultsIsBitIdentical) {
  Fixture f_full;
  Fixture f_killed;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.retry.max_attempts = 3;

  env::FaultProfile profile;
  profile.query_failure_rate = 0.2;
  profile.injection_drop_rate = 0.1;
  profile.shadow_ban_rate = 0.05;
  profile.seed = 21;
  const SleepFn no_sleep = [](double) {};

  env::FaultyEnvironment faulty_full(&f_full.environment, profile);
  PoisonRecAttacker uninterrupted(&f_full.environment, cfg);
  uninterrupted.AttachFaultyEnvironment(&faulty_full, no_sleep);
  const auto reference = uninterrupted.Train(6);

  const std::string path = TempPath("poisonrec_fault_resume_ckpt.bin");
  env::FaultyEnvironment faulty_killed(&f_killed.environment, profile);
  {
    PoisonRecAttacker first_process(&f_killed.environment, cfg);
    first_process.AttachFaultyEnvironment(&faulty_killed, no_sleep);
    first_process.Train(3);
    ASSERT_TRUE(first_process.SaveCheckpoint(path).ok());
  }
  PoisonRecAttacker resumed(&f_killed.environment, cfg);
  resumed.AttachFaultyEnvironment(&faulty_killed, no_sleep);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  const auto tail = resumed.Train(3);

  for (std::size_t i = 0; i < tail.size(); ++i) {
    ExpectStatsBitwiseEqual(reference[3 + i], tail[i], "faulty resumed step");
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, AtomicWriteLeavesNoTmpFileAndOverwritesSafely) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  attacker.TrainStep();
  const std::string path = TempPath("poisonrec_atomic_ckpt.bin");
  ASSERT_TRUE(attacker.SaveCheckpoint(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Saving again over an existing checkpoint also succeeds.
  attacker.TrainStep();
  ASSERT_TRUE(attacker.SaveCheckpoint(path).ok());
  PoisonRecAttacker restored(&f.environment, Fixture::MakeAttackerConfig());
  EXPECT_TRUE(restored.LoadCheckpoint(path).ok());
  EXPECT_EQ(restored.steps_taken(), 2u);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptOrMissingCheckpointIsRejectedCleanly) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  EXPECT_EQ(attacker.LoadCheckpoint("/nonexistent/ckpt.bin").code(),
            StatusCode::kIoError);

  const std::string garbage = TempPath("poisonrec_garbage_ckpt.bin");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  EXPECT_EQ(attacker.LoadCheckpoint(garbage).code(),
            StatusCode::kInvalidArgument);
  std::remove(garbage.c_str());

  // A truncated checkpoint is torn state from a crash mid-publish:
  // kDataLoss, distinct from a merely missing file (kIoError), so the
  // orchestrator knows to discard it and replay from scratch.
  const std::string path = TempPath("poisonrec_truncated_ckpt.bin");
  attacker.TrainStep();
  ASSERT_TRUE(attacker.SaveCheckpoint(path).ok());
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  PoisonRecAttacker victim(&f.environment, Fixture::MakeAttackerConfig());
  EXPECT_EQ(victim.LoadCheckpoint(path).code(), StatusCode::kDataLoss);
  EXPECT_EQ(victim.steps_taken(), 0u);
  victim.TrainStep();  // still trains fine

  // Truncating into the header (even to zero bytes) is also kDataLoss.
  std::filesystem::resize_file(path, 4);
  EXPECT_EQ(victim.LoadCheckpoint(path).code(), StatusCode::kDataLoss);
  std::filesystem::resize_file(path, 0);
  EXPECT_EQ(victim.LoadCheckpoint(path).code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CheckpointTest, OldVersionCheckpointIsRejectedWithClearError) {
  // A v1 checkpoint (pre account-pool / adaptive-defender) must be
  // rejected as kInvalidArgument, not misparsed as the current format.
  const std::string path = TempPath("poisonrec_v1_ckpt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t header[2] = {0x5052434bu /* "PRCK" */, 1u};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    const std::uint64_t steps = 3;
    out.write(reinterpret_cast<const char*>(&steps), sizeof(steps));
  }
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  const Status status = attacker.LoadCheckpoint(path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version 1"), std::string::npos)
      << status.message();
  EXPECT_EQ(attacker.steps_taken(), 0u);
  attacker.TrainStep();  // attacker unharmed
  std::remove(path.c_str());
}

TEST(CheckpointTest, PoolConfigurationMismatchIsRejected) {
  // An environment large enough for a 2-account reserve on 4 slots.
  auto env_cfg = Fixture::MakeEnvConfig();
  env_cfg.num_attackers = 6;
  env::AttackEnvironment environment(
      Fixture::MakeLog(), rec::MakeRecommender("ItemPop").value(), env_cfg);

  auto pooled_cfg = Fixture::MakeAttackerConfig();
  pooled_cfg.pool.enabled = true;
  pooled_cfg.pool.reserve_accounts = 2;
  PoisonRecAttacker pooled(&environment, pooled_cfg);
  pooled.TrainStep();
  const std::string path = TempPath("poisonrec_pool_mismatch_ckpt.bin");
  ASSERT_TRUE(pooled.SaveCheckpoint(path).ok());

  // A pooled checkpoint cannot restore into a pool-less attacker.
  Fixture poolless_fixture;
  PoisonRecAttacker poolless(&poolless_fixture.environment,
                             Fixture::MakeAttackerConfig());
  EXPECT_EQ(poolless.LoadCheckpoint(path).code(),
            StatusCode::kInvalidArgument);

  // Same policy shape (4 slots), different pool total (7 accounts vs 6):
  // caught by the pool-section shape validation.
  auto bigger_env_cfg = env_cfg;
  bigger_env_cfg.num_attackers = 7;
  env::AttackEnvironment bigger_environment(
      Fixture::MakeLog(), rec::MakeRecommender("ItemPop").value(),
      bigger_env_cfg);
  auto bigger_pool_cfg = pooled_cfg;
  bigger_pool_cfg.pool.reserve_accounts = 3;
  PoisonRecAttacker mismatched(&bigger_environment, bigger_pool_cfg);
  const Status status = mismatched.LoadCheckpoint(path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("pool"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(CheckpointTest, PooledRoundTripRestoresPoolState) {
  auto env_cfg = Fixture::MakeEnvConfig();
  env_cfg.num_attackers = 6;
  env::AttackEnvironment environment(
      Fixture::MakeLog(), rec::MakeRecommender("ItemPop").value(), env_cfg);
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.pool.enabled = true;
  cfg.pool.reserve_accounts = 2;

  PoisonRecAttacker attacker(&environment, cfg);
  attacker.Train(2);
  const std::string path = TempPath("poisonrec_pooled_ckpt.bin");
  ASSERT_TRUE(attacker.SaveCheckpoint(path).ok());

  PoisonRecAttacker restored(&environment, cfg);
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  ASSERT_NE(restored.account_pool(), nullptr);
  EXPECT_EQ(restored.account_pool()->slot_accounts(),
            attacker.account_pool()->slot_accounts());
  EXPECT_EQ(restored.account_pool()->reserve_remaining(),
            attacker.account_pool()->reserve_remaining());
  EXPECT_EQ(restored.account_pool()->retired_accounts(),
            attacker.account_pool()->retired_accounts());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MismatchedPolicyShapeIsRejected) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  attacker.TrainStep();
  const std::string path = TempPath("poisonrec_shape_ckpt.bin");
  ASSERT_TRUE(attacker.SaveCheckpoint(path).ok());

  auto other_cfg = Fixture::MakeAttackerConfig();
  other_cfg.policy.embedding_dim = 16;  // different parameter shapes
  PoisonRecAttacker other(&f.environment, other_cfg);
  EXPECT_EQ(other.LoadCheckpoint(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace poisonrec::core
