#include "env/defended.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::env {

namespace {

/// Process-global mirrors of the defender activity counters (the
/// attacker-facing view lives in DefenseStats; these feed the campaign
/// metrics snapshot without plumbing the instance around).
struct DefenseCounters {
  obs::Counter* queries;
  obs::Counter* sweeps;
  obs::Counter* bans;
  obs::Counter* filtered_trajectories;
  obs::Counter* recorded_clicks;
};

const DefenseCounters& Counters() {
  static const DefenseCounters counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    DefenseCounters c;
    c.queries = reg.GetCounter("poisonrec_defense_queries_total");
    c.sweeps = reg.GetCounter("poisonrec_defense_sweeps_total");
    c.bans = reg.GetCounter("poisonrec_defense_bans_total");
    c.filtered_trajectories =
        reg.GetCounter("poisonrec_defense_filtered_trajectories_total");
    c.recorded_clicks =
        reg.GetCounter("poisonrec_defense_recorded_clicks_total");
    return c;
  }();
  return counters;
}

// SplitMix64 finalizer (same construction as fault.cc): decorrelates the
// structured (seed, sweep, account) tuples driving ban-probability draws.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::istream& in, std::uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadF64(std::istream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

// Defender-state framing ("PRDF", version 1) inside the blob returned by
// SerializeState; embedded whole into attacker checkpoints.
constexpr std::uint32_t kStateMagic = 0x50524446u;  // "PRDF"
constexpr std::uint32_t kStateVersion = 1;

}  // namespace

DefendedEnvironment::DefendedEnvironment(
    const AttackEnvironment* base, std::unique_ptr<defense::Detector> detector,
    const DefenseProfile& profile)
    : base_(base), detector_(std::move(detector)), profile_(profile) {
  Init();
}

DefendedEnvironment::DefendedEnvironment(
    const FaultyEnvironment* faulty, std::unique_ptr<defense::Detector> detector,
    const DefenseProfile& profile)
    : base_(faulty == nullptr ? nullptr : &faulty->base()),
      faulty_(faulty),
      detector_(std::move(detector)),
      profile_(profile) {
  Init();
}

void DefendedEnvironment::Init() {
  POISONREC_CHECK(base_ != nullptr);
  POISONREC_CHECK(detector_ != nullptr);
  POISONREC_CHECK_GT(profile_.detection_interval, 0u);
  POISONREC_CHECK(profile_.ban_probability >= 0.0 &&
                  profile_.ban_probability <= 1.0)
      << "ban_probability must be a probability, got "
      << profile_.ban_probability;
  history_.resize(base_->num_attackers());
  banned_.assign(base_->num_attackers(), 0);
  next_sweep_ = profile_.detection_interval;
}

void DefendedEnvironment::RunDueSweeps(std::uint64_t query_id) {
  while (query_id >= next_sweep_) {
    Sweep(next_sweep_);
    next_sweep_ += profile_.detection_interval;
  }
}

void DefendedEnvironment::Sweep(std::uint64_t sweep_query) {
  ++stats_.sweeps;
  Counters().sweeps->Increment();
  if (profile_.bans_per_sweep == 0) return;

  // Audit log: the expanded clean log plus every *live* account's
  // accumulated submissions. Banned accounts' past clicks are already
  // expunged — exactly the "past and future clicks filtered" semantics.
  const data::Dataset& clean = base_->dataset();
  data::Dataset audit = clean.Clone();
  bool any_history = false;
  for (std::size_t a = 0; a < history_.size(); ++a) {
    if (banned_[a] || history_[a].empty()) continue;
    audit.AddSequence(base_->AttackerUserId(a), history_[a]);
    any_history = true;
  }
  if (!any_history) return;

  const std::vector<double> scores = detector_->Score(audit);

  // Candidates: live attacker accounts with history, above the threshold.
  // (The platform audits *new* accounts — every attacker slot is one —
  // so organic users are never ban candidates; see docs/robustness.md.)
  std::vector<std::size_t> candidates;
  for (std::size_t a = 0; a < history_.size(); ++a) {
    if (banned_[a] || history_[a].empty()) continue;
    if (scores[base_->AttackerUserId(a)] > profile_.suspicion_threshold) {
      candidates.push_back(a);
    }
  }
  // Only the bans_per_sweep most suspicious candidates matter; the
  // comparator is a total order (ties by slot index), so partial_sort
  // selects and orders exactly what the old full sort did — the ban
  // sequence is unchanged.
  const auto most_suspicious = [this, &scores](std::size_t a, std::size_t b) {
    const double sa = scores[base_->AttackerUserId(a)];
    const double sb = scores[base_->AttackerUserId(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  };
  if (candidates.size() > profile_.bans_per_sweep) {
    const auto mid = candidates.begin() +
                     static_cast<std::ptrdiff_t>(profile_.bans_per_sweep);
    std::partial_sort(candidates.begin(), mid, candidates.end(),
                      most_suspicious);
    candidates.resize(profile_.bans_per_sweep);
  } else {
    std::sort(candidates.begin(), candidates.end(), most_suspicious);
  }

  for (std::size_t a : candidates) {
    if (profile_.ban_probability < 1.0) {
      // Deterministic in (seed, sweep query id, account) — independent of
      // how many candidates preceded this one.
      Rng rng(Mix(Mix(profile_.seed ^ Mix(sweep_query)) ^ Mix(a + 1)));
      if (!rng.Bernoulli(profile_.ban_probability)) continue;
    }
    banned_[a] = 1;
    history_[a].clear();
    BanEvent event;
    event.query_id = sweep_query;
    event.attacker_index = a;
    event.user_id = base_->AttackerUserId(a);
    event.suspicion = scores[event.user_id];
    events_.push_back(event);
    ++stats_.bans;
    Counters().bans->Increment();
    POISONREC_LOG(Info) << "defender banned account " << a << " (user "
                        << event.user_id << ", suspicion " << event.suspicion
                        << ") at query " << sweep_query;
  }
}

StatusOr<double> DefendedEnvironment::TryEvaluate(
    const std::vector<Trajectory>& trajectories, std::uint64_t query_id,
    std::uint32_t attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;
  Counters().queries->Increment();
  RunDueSweeps(query_id);

  // The platform silently drops submissions from banned accounts: their
  // clicks never reach the poison log, so retraining never sees them.
  std::vector<Trajectory> delivered;
  delivered.reserve(trajectories.size());
  for (const Trajectory& traj : trajectories) {
    POISONREC_CHECK_LT(traj.attacker_index, banned_.size())
        << "trajectory for unknown account";
    if (banned_[traj.attacker_index]) {
      ++stats_.filtered_trajectories;
      Counters().filtered_trajectories->Increment();
      continue;
    }
    delivered.push_back(traj);
  }

  StatusOr<double> result =
      faulty_ != nullptr ? faulty_->TryEvaluate(delivered, query_id, attempt)
                         : StatusOr<double>(base_->Evaluate(delivered));
  if (!result.ok()) return result;

  // Record what landed, once per query id (retry attempts of the same
  // query must not double-count the submission).
  if (recorded_queries_.insert(query_id).second) {
    for (const Trajectory& traj : delivered) {
      std::vector<data::ItemId>& h = history_[traj.attacker_index];
      h.insert(h.end(), traj.items.begin(), traj.items.end());
      stats_.recorded_clicks += traj.items.size();
      Counters().recorded_clicks->Increment(traj.items.size());
    }
  }
  return result;
}

bool DefendedEnvironment::IsBanned(std::size_t attacker_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  POISONREC_CHECK_LT(attacker_index, banned_.size());
  return banned_[attacker_index] != 0;
}

std::vector<std::size_t> DefendedEnvironment::BannedAccounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::size_t> out;
  for (std::size_t a = 0; a < banned_.size(); ++a) {
    if (banned_[a]) out.push_back(a);
  }
  return out;
}

std::vector<BanEvent> DefendedEnvironment::ban_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

DefenseStats DefendedEnvironment::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string DefendedEnvironment::SerializeState() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out(std::ios::binary);
  const std::uint32_t header[2] = {kStateMagic, kStateVersion};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  WriteU64(out, history_.size());
  for (const std::vector<data::ItemId>& h : history_) {
    WriteU64(out, h.size());
    for (data::ItemId item : h) WriteU64(out, item);
  }
  for (char b : banned_) out.put(b);
  WriteU64(out, events_.size());
  for (const BanEvent& e : events_) {
    WriteU64(out, e.query_id);
    WriteU64(out, e.attacker_index);
    WriteU64(out, e.user_id);
    WriteF64(out, e.suspicion);
  }
  WriteU64(out, recorded_queries_.size());
  for (std::uint64_t q : recorded_queries_) WriteU64(out, q);
  WriteU64(out, next_sweep_);
  WriteU64(out, stats_.queries);
  WriteU64(out, stats_.sweeps);
  WriteU64(out, stats_.bans);
  WriteU64(out, stats_.filtered_trajectories);
  WriteU64(out, stats_.recorded_clicks);
  return out.str();
}

Status DefendedEnvironment::RestoreState(const std::string& blob) {
  std::istringstream in(blob, std::ios::binary);
  std::uint32_t header[2] = {0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] != kStateMagic) {
    return Status::InvalidArgument("not a defender state blob");
  }
  if (header[1] != kStateVersion) {
    return Status::InvalidArgument("unsupported defender state version " +
                                   std::to_string(header[1]));
  }
  std::uint64_t accounts = 0;
  if (!ReadU64(in, &accounts)) {
    return Status::IoError("truncated defender state");
  }
  if (accounts != history_.size()) {
    return Status::InvalidArgument(
        "defender state has " + std::to_string(accounts) +
        " accounts, environment has " + std::to_string(history_.size()));
  }

  // Stage, then commit: a truncated blob must leave this object unchanged.
  std::vector<std::vector<data::ItemId>> history(accounts);
  for (std::vector<data::ItemId>& h : history) {
    std::uint64_t n = 0;
    if (!ReadU64(in, &n)) return Status::IoError("truncated defender state");
    h.resize(n);
    for (data::ItemId& item : h) {
      std::uint64_t v = 0;
      if (!ReadU64(in, &v)) return Status::IoError("truncated defender state");
      item = static_cast<data::ItemId>(v);
    }
  }
  std::vector<char> banned(accounts);
  for (char& b : banned) {
    const int c = in.get();
    if (c == std::istringstream::traits_type::eof()) {
      return Status::IoError("truncated defender state");
    }
    b = static_cast<char>(c);
  }
  std::uint64_t n_events = 0;
  if (!ReadU64(in, &n_events)) {
    return Status::IoError("truncated defender state");
  }
  std::vector<BanEvent> events(n_events);
  for (BanEvent& e : events) {
    std::uint64_t attacker = 0;
    std::uint64_t user = 0;
    if (!ReadU64(in, &e.query_id) || !ReadU64(in, &attacker) ||
        !ReadU64(in, &user) || !ReadF64(in, &e.suspicion)) {
      return Status::IoError("truncated defender state");
    }
    e.attacker_index = attacker;
    e.user_id = user;
  }
  std::uint64_t n_recorded = 0;
  if (!ReadU64(in, &n_recorded)) {
    return Status::IoError("truncated defender state");
  }
  std::set<std::uint64_t> recorded;
  for (std::uint64_t i = 0; i < n_recorded; ++i) {
    std::uint64_t q = 0;
    if (!ReadU64(in, &q)) return Status::IoError("truncated defender state");
    recorded.insert(q);
  }
  std::uint64_t next_sweep = 0;
  DefenseStats stats;
  if (!ReadU64(in, &next_sweep) || !ReadU64(in, &stats.queries) ||
      !ReadU64(in, &stats.sweeps) || !ReadU64(in, &stats.bans) ||
      !ReadU64(in, &stats.filtered_trajectories) ||
      !ReadU64(in, &stats.recorded_clicks)) {
    return Status::IoError("truncated defender state");
  }

  std::lock_guard<std::mutex> lock(mu_);
  history_ = std::move(history);
  banned_ = std::move(banned);
  events_ = std::move(events);
  recorded_queries_ = std::move(recorded);
  next_sweep_ = next_sweep;
  stats_ = stats;
  return Status::OK();
}

}  // namespace poisonrec::env
