#include "data/dataset.h"

#include <algorithm>

#include "util/csv.h"
#include "util/logging.h"

namespace poisonrec::data {

Dataset::Dataset(std::size_t num_users, std::size_t num_items)
    : num_items_(num_items),
      sequences_(num_users),
      popularity_(num_items, 0) {}

void Dataset::Add(UserId user, ItemId item) {
  POISONREC_CHECK_LT(user, sequences_.size());
  POISONREC_CHECK_LT(item, num_items_);
  sequences_[user].push_back(item);
  ++popularity_[item];
  ++num_interactions_;
}

void Dataset::AddSequence(UserId user, const std::vector<ItemId>& items) {
  for (ItemId item : items) Add(user, item);
}

const std::vector<ItemId>& Dataset::Sequence(UserId user) const {
  POISONREC_CHECK_LT(user, sequences_.size());
  return sequences_[user];
}

std::vector<ItemId> Dataset::ItemsByPopularity() const {
  std::vector<ItemId> items(num_items_);
  for (std::size_t i = 0; i < num_items_; ++i) items[i] = i;
  std::sort(items.begin(), items.end(), [this](ItemId a, ItemId b) {
    if (popularity_[a] != popularity_[b]) {
      return popularity_[a] < popularity_[b];
    }
    return a < b;
  });
  return items;
}

std::vector<UserId> Dataset::UsersWithMinLength(std::size_t min_len) const {
  std::vector<UserId> users;
  for (UserId u = 0; u < sequences_.size(); ++u) {
    if (sequences_[u].size() >= min_len) users.push_back(u);
  }
  return users;
}

std::vector<Interaction> Dataset::AllInteractions() const {
  std::vector<Interaction> out;
  out.reserve(num_interactions_);
  for (UserId u = 0; u < sequences_.size(); ++u) {
    for (std::size_t p = 0; p < sequences_[u].size(); ++p) {
      out.push_back({u, sequences_[u][p], p});
    }
  }
  return out;
}

LeaveOneOutSplit SplitLeaveOneOut(const Dataset& dataset) {
  LeaveOneOutSplit split{Dataset(dataset.num_users(), dataset.num_items()),
                         {},
                         {}};
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const std::vector<ItemId>& seq = dataset.Sequence(u);
    if (seq.size() < 3) {
      split.train.AddSequence(u, seq);
      continue;
    }
    for (std::size_t p = 0; p + 2 < seq.size(); ++p) {
      split.train.Add(u, seq[p]);
    }
    split.validation.push_back({u, seq[seq.size() - 2], seq.size() - 2});
    split.test.push_back({u, seq[seq.size() - 1], seq.size() - 1});
  }
  return split;
}

StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 std::size_t min_users,
                                 std::size_t min_items) {
  POISONREC_ASSIGN_OR_RETURN(auto rows, ReadCsv(path));
  std::size_t max_user = 0;
  std::size_t max_item = 0;
  std::vector<std::pair<std::size_t, std::size_t>> events;
  events.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.size() < 2) {
      return Status::InvalidArgument("CSV row with fewer than 2 fields in " +
                                     path);
    }
    char* end = nullptr;
    const unsigned long long user = std::strtoull(row[0].c_str(), &end, 10);
    if (end == row[0].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad user id '" + row[0] + "'");
    }
    const unsigned long long item = std::strtoull(row[1].c_str(), &end, 10);
    if (end == row[1].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad item id '" + row[1] + "'");
    }
    max_user = std::max(max_user, static_cast<std::size_t>(user));
    max_item = std::max(max_item, static_cast<std::size_t>(item));
    events.emplace_back(user, item);
  }
  Dataset dataset(std::max(min_users, events.empty() ? 0 : max_user + 1),
                  std::max(min_items, events.empty() ? 0 : max_item + 1));
  for (const auto& [user, item] : events) {
    dataset.Add(user, item);
  }
  return dataset;
}

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(dataset.num_interactions());
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    for (ItemId item : dataset.Sequence(u)) {
      rows.push_back({std::to_string(u), std::to_string(item)});
    }
  }
  return WriteCsv(path, rows);
}

}  // namespace poisonrec::data
