#include "bench/common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/json.h"
#include "util/csv.h"
#include "util/logging.h"

namespace poisonrec::bench {

namespace {

std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

std::size_t GetEnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr
             ? fallback
             : static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::string current;
  for (char c : csv) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace

BenchConfig LoadBenchConfig() {
  BenchConfig config;
  config.scale = GetEnvDouble("POISONREC_SCALE", config.scale);
  config.training_steps =
      GetEnvSize("POISONREC_STEPS", config.training_steps);
  config.samples_per_step =
      GetEnvSize("POISONREC_SAMPLES", config.samples_per_step);
  config.embedding_dim = GetEnvSize("POISONREC_DIM", config.embedding_dim);
  config.rankers = SplitList(GetEnvOr("POISONREC_RANKERS", ""));
  if (config.rankers.empty()) config.rankers = rec::AllRecommenderNames();
  config.datasets = SplitList(GetEnvOr("POISONREC_DATASETS", ""));
  config.max_eval_users =
      GetEnvSize("POISONREC_EVAL_USERS", config.max_eval_users);
  config.out_dir = GetEnvOr("POISONREC_OUT", ".");
  return config;
}

data::Dataset MakeDataset(const BenchConfig& config,
                          data::DatasetPreset preset) {
  data::SyntheticConfig synth =
      data::PresetConfig(preset, config.scale, config.seed);
  return data::GenerateSynthetic(synth);
}

std::unique_ptr<env::AttackEnvironment> MakeEnvironment(
    const BenchConfig& config, data::DatasetPreset preset,
    const std::string& ranker_name) {
  data::Dataset log = MakeDataset(config, preset);

  rec::FitConfig fit;
  fit.embedding_dim = config.embedding_dim;
  fit.epochs = 4;
  fit.update_epochs = 3;
  fit.seed = config.seed ^ 0x51u;

  env::EnvironmentConfig env_config;
  env_config.num_attackers = config.num_attackers;
  env_config.trajectory_length = config.trajectory_length;
  env_config.num_target_items = config.num_target_items;
  env_config.num_candidate_originals = config.candidate_originals;
  env_config.top_k = config.top_k;
  env_config.max_eval_users = config.max_eval_users;
  env_config.seed = config.seed ^ 0x77u;

  auto ranker = rec::MakeRecommender(ranker_name, fit);
  POISONREC_CHECK(ranker.ok()) << ranker.status();
  return std::make_unique<env::AttackEnvironment>(
      log, std::move(ranker).value(), env_config);
}

core::PoisonRecConfig MakePoisonRecConfig(const BenchConfig& config,
                                          core::ActionSpaceKind kind,
                                          std::uint64_t seed) {
  core::PoisonRecConfig pr;
  pr.samples_per_step = config.samples_per_step;
  pr.batch_size = config.samples_per_step;  // paper: M = B
  pr.update_epochs = 3;                     // paper: K = 3
  pr.learning_rate = 2e-3f;                 // paper
  pr.clip_epsilon = 0.1f;                   // paper
  pr.policy.embedding_dim = config.embedding_dim;
  pr.policy.action_space = kind;
  pr.policy.seed = seed ^ 0x9e37u;
  pr.seed = seed;
  return pr;
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  PrintTableRow(columns);
  std::string sep;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    sep += std::string(i == 0 ? 14 : 12, '-');
  }
  std::printf("%s\n", sep.c_str());
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-14s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

std::string FormatCount(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  return buffer;
}

void WriteCsvOutput(const BenchConfig& config, const std::string& name,
                    const std::vector<std::vector<std::string>>& rows) {
  const std::string path = config.out_dir + "/" + name;
  Status status = WriteCsv(path, rows);
  if (status.ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("failed to write %s: %s\n", path.c_str(),
                status.ToString().c_str());
  }
}

void WriteJsonOutput(const BenchConfig& config, const std::string& name,
                     const std::vector<std::vector<std::string>>& rows) {
  const std::string path = config.out_dir + "/" + name;
  std::string body = "[\n";
  if (!rows.empty()) {
    const std::vector<std::string>& keys = rows[0];
    for (std::size_t r = 1; r < rows.size(); ++r) {
      body += "  {";
      for (std::size_t c = 0; c < keys.size() && c < rows[r].size(); ++c) {
        if (c > 0) body += ", ";
        obs::AppendJsonString(&body, keys[c]);
        body += ": ";
        if (obs::IsJsonNumberLiteral(rows[r][c])) {
          body += rows[r][c];
        } else {
          obs::AppendJsonString(&body, rows[r][c]);
        }
      }
      body += r + 1 < rows.size() ? "},\n" : "}\n";
    }
  }
  body += "]\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::printf("failed to write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace poisonrec::bench
