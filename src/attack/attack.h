// Common interface for attack methods (the paper's 6 baselines plus a
// PoisonRec adapter). An attack produces the N fake trajectories of T
// clicks to inject. Heuristic methods use only attacker-visible knowledge
// (item popularity); PowerItem and ConsLOP additionally read the system
// log (the paper includes them as stronger-knowledge competitors); the
// learning-based methods query the environment's reward.
#ifndef POISONREC_ATTACK_ATTACK_H_
#define POISONREC_ATTACK_ATTACK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "env/environment.h"

namespace poisonrec::attack {

class AttackMethod {
 public:
  virtual ~AttackMethod() = default;

  virtual std::string Name() const = 0;

  /// Generates the full attack (N trajectories x T clicks) against the
  /// environment. Deterministic given the seed.
  virtual std::vector<env::Trajectory> GenerateAttack(
      const env::AttackEnvironment& environment, std::uint64_t seed) = 0;
};

}  // namespace poisonrec::attack

#endif  // POISONREC_ATTACK_ATTACK_H_
