// Fleet orchestrator: runs a FleetPlan's campaigns under supervision
// with bounded concurrency, a stall/deadline watchdog, a crash-durable
// journal, priority preemption, and a consolidated report. With
// --shared, N orchestrator processes cooperate on one plan over a
// shared journal/checkpoint/lease directory (orch/lease.h).
//
// Lifecycle of one `poisonrec fleet` run:
//
//   1. Validate the plan and create the checkpoint directory.
//   2. On --resume, replay the journal (all sibling journal files are
//      merged in shared mode, fencing-token-aware): campaigns already
//      terminal (done/quarantined/failed) are reported as recovered
//      without re-running; unfinished ones are re-scheduled from their
//      last durable checkpoint.
//   3. Workers claim the highest-priority ready campaign (plan order as
//      tiebreak). In shared mode a claim also acquires the campaign
//      lease; a campaign held by a live sibling is left to it, and an
//      expired lease (dead or stopped sibling) is seized with an
//      incremented fencing token after re-merging the journals.
//   4. A watchdog thread (condition-variable wait, so shutdown wakes it
//      immediately) polls running supervisors: stall -> hard cancel +
//      restart budget; deadline overrun -> quarantine. It also renews
//      held leases every ttl/3, ingests --submit-dir campaign files,
//      and drives preemption: when a higher-priority campaign is ready
//      and every worker is busy, the lowest-priority running campaign
//      is soft-stopped at its next step boundary, journals `preempted`,
//      and is re-queued (spec.max_preemptions caps how often).
//   5. RequestShutdown (threads) / RequestShutdownFromSignal (signal
//      handlers) soft-stop the fleet: running campaigns checkpoint at
//      the next step boundary and journal `checkpointed`; queued ones
//      stay pending. Both resume under a later `fleet --resume`.
//   6. Write results/fleet_report.{json,csv}. In shared mode the final
//      report merges every worker's journal, so campaigns finished by
//      siblings appear with their real states.
//
// Exit-code contract (FleetResult::ExitCode): 0 = every campaign done;
// 2 = partial (quarantined, failed, interrupted, or still owned by a
// live sibling); 1 = fatal orchestrator error.
#ifndef POISONREC_ORCH_FLEET_H_
#define POISONREC_ORCH_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "orch/journal.h"
#include "orch/lease.h"
#include "orch/spec.h"
#include "orch/supervisor.h"
#include "util/retry.h"
#include "util/status.h"

namespace poisonrec::orch {

struct FleetOptions {
  /// JSONL write-ahead journal; replayed by --resume after a crash. In
  /// shared mode each worker appends to its own sibling file
  /// `<stem>.<worker id><ext>` and replay merges the whole family.
  std::string journal_path = "results/fleet_journal.jsonl";
  /// Directory of per-campaign v3 checkpoints (`<id>.ckpt`; token-
  /// suffixed `<id>.t<token>.ckpt` in shared mode).
  std::string checkpoint_dir = "results/fleet_checkpoints";
  /// Consolidated report paths; empty skips that format.
  std::string report_json_path = "results/fleet_report.json";
  std::string report_csv_path = "results/fleet_report.csv";
  /// Replay the journal and re-schedule only unfinished campaigns.
  bool resume = false;
  /// Campaigns running at once. Campaign internals are single-threaded
  /// (orch/spec.h MakeAttackerConfig), so this is the fleet's only
  /// parallelism knob.
  std::size_t max_concurrent = 2;
  /// Watchdog poll cadence. Small enough that sub-second stall timeouts
  /// in tests fire promptly. Programmatic shutdown does not wait for it
  /// (condition variables wake immediately); signal-handler shutdown
  /// latency is bounded by one poll.
  double watchdog_poll_seconds = 0.02;
  /// Multi-process fleet: claim campaigns through leases, append to a
  /// per-worker journal file, merge sibling journals at replay/report
  /// time. Implies the journal is never truncated.
  bool shared = false;
  /// Worker identity in lease files and journal records; empty uses
  /// DefaultWorkerId() (`w<pid>-<nonce>`). Only meaningful with shared.
  std::string worker_id;
  /// Lease heartbeat TTL: a lease not renewed for this long counts as
  /// abandoned and may be seized by a sibling.
  double lease_ttl_seconds = 2.0;
  /// Directory watched for late campaign submissions (`*.json`, one
  /// ParseCampaignSpecText object per file). Empty disables. Each file
  /// is ingested once; a high-priority submission preempts a running
  /// lower-priority campaign when all workers are busy.
  std::string submit_dir;
  /// Periodically publish a durable worker status snapshot
  /// (`<telemetry dir>/<worker>.status.json`, integrity-framed via
  /// util/fsio) that `poisonrec fleet --status` aggregates. Snapshots
  /// carry worker identity, a wall-clock heartbeat, per-campaign
  /// progress (state/step/reward/rate) and the obs::Metrics registry.
  bool publish_status = true;
  /// Snapshot directory; empty derives `<checkpoint_dir>/telemetry` so
  /// shared workers land in one place without extra flags.
  std::string telemetry_dir;
  /// Publication cadence (rides the watchdog thread; a final snapshot
  /// with `"shutdown":true` is written when Run finishes either way).
  double status_publish_seconds = 0.25;
  /// Test seams forwarded to every supervisor ({} = really sleep).
  SleepFn retry_sleep;
  SleepFn restart_sleep;
};

struct FleetResult {
  std::string plan_name;
  /// One outcome per campaign: plan order, then submissions in arrival
  /// order.
  std::vector<CampaignOutcome> outcomes;
  std::size_t done = 0;
  std::size_t quarantined = 0;
  std::size_t failed = 0;
  /// Interrupted by shutdown (resumable: checkpointed, preempted-but-
  /// not-rescheduled, or still pending) or still running on a sibling.
  std::size_t interrupted = 0;
  /// Terminal outcomes recovered from the journal without re-running
  /// (including campaigns a sibling worker finished).
  std::size_t recovered = 0;
  /// Total preemption soft-stops across campaigns this run.
  std::size_t preemptions = 0;
  /// Campaigns this worker lost mid-run to a lease seizure.
  std::size_t fenced = 0;
  /// Campaigns owned by sibling workers (shared mode).
  std::size_t sibling_owned = 0;
  /// Journal-merge hygiene (orch/journal.h JournalReplayResult) from
  /// the final replay backing this report.
  std::size_t journal_files_merged = 0;
  std::uint64_t journal_malformed_lines = 0;
  std::uint64_t journal_torn_tail_lines = 0;
  std::uint64_t journal_stale_records = 0;
  /// Interior lines whose CRC32C line checksum failed (bit rot caught
  /// by the integrity framing; skipped like malformed lines).
  std::uint64_t journal_corrupt_lines = 0;
  /// Damaged checkpoints moved to `<ckpt-dir>/corrupt/` by supervisors
  /// during resume this run (summed over outcomes).
  std::uint64_t checkpoints_quarantined = 0;
  double wall_seconds = 0.0;
  /// Orchestrator-level status (plan validation, journal/report I/O).
  /// Individual campaign failures do NOT make this non-OK.
  Status status;
  /// 1 fatal, 2 partial fleet, 0 all campaigns done.
  int ExitCode() const;
};

class FleetOrchestrator {
 public:
  /// `dataset` must outlive the orchestrator; the plan is copied.
  FleetOrchestrator(FleetPlan plan, const data::Dataset* dataset,
                    FleetOptions options);

  /// Runs the fleet to completion (or to shutdown). Call once.
  FleetResult Run();

  /// Graceful shutdown from another thread: running campaigns stop at
  /// the next step boundary, already checkpointed. Wakes the scheduler
  /// and watchdog immediately (condition-variable notify), so shutdown
  /// latency does not depend on watchdog_poll_seconds.
  void RequestShutdown();

  /// Async-signal-safe shutdown: a single atomic store, no locking or
  /// notification (pthread_cond_signal is not signal-safe). Workers and
  /// watchdog observe it within one watchdog poll.
  void RequestShutdownFromSignal() {
    stop_.store(true, std::memory_order_release);
  }

  bool shutdown_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Submits a late campaign while Run is active (also the backend of
  /// --submit-dir). The campaign joins the ready queue at its priority;
  /// duplicate ids are rejected. Thread-safe.
  Status Submit(CampaignSpec spec);

 private:
  /// Scheduler slot of one campaign.
  enum class Slot {
    kReady,    // waiting for a worker (fresh, resumed, or re-queued)
    kRunning,  // a local supervisor is executing it
    kDone,     // outcome final for this worker (terminal / interrupted)
    kSibling,  // shared mode: a sibling worker holds the lease
  };
  struct Entry {
    CampaignSpec spec;
    Slot slot = Slot::kReady;
    /// Live supervisor while kRunning (shared_ptr: the watchdog uses it
    /// outside the scheduler lock).
    std::shared_ptr<CampaignSupervisor> supervisor;
    CampaignOutcome outcome;
    bool has_outcome = false;
    /// Journal state carried into the next (re)start of this campaign.
    std::optional<CampaignReplay> replay;
    /// Preemptions charged so far (spec.max_preemptions is the cap).
    std::uint64_t preemptions = 0;
    /// Ticks of the last successful lease renewal (watchdog cadence).
    std::uint64_t last_renew_ticks = 0;
  };

  Status WriteJsonReport(const FleetResult& result) const;
  Status WriteCsvReport(const FleetResult& result) const;
  /// One scheduler worker: claim -> run -> classify, until drained.
  void WorkerLoop();
  /// Watchdog body: stall/deadline aborts, lease renewal, preemption,
  /// submit-dir ingestion. Returns when ShutdownWatchdog was called.
  void WatchdogLoop();
  void ShutdownWatchdog();
  /// Picks the best ready entry (highest priority, arrival tiebreak);
  /// nullptr when none. Caller holds sched_mu_.
  Entry* BestReadyLocked();
  /// Shared mode: re-merge every journal file and fold fresh sibling
  /// progress into kSibling entries (terminal ones become kDone).
  /// Caller holds sched_mu_.
  void RefreshSiblingsLocked();
  /// Shared mode: scan submit_dir for new `*.json` campaign files.
  void IngestSubmissions();
  /// Journal merge of the worker's own file, or the whole sibling
  /// family in shared mode.
  StatusOr<JournalReplayResult> MergedReplay() const;
  /// The path this worker's journal records go to.
  std::string WorkerJournalPath() const;
  /// Resolved snapshot directory (options_.telemetry_dir or
  /// `<checkpoint_dir>/telemetry`).
  std::string TelemetryDir() const;
  /// Serializes this worker's status snapshot (takes sched_mu_).
  std::string WorkerStatusJson(bool shutdown);
  /// Durably publishes the snapshot to
  /// `<telemetry dir>/<status worker id>.status.json`. Failures are
  /// logged, never fatal — observability must not take the fleet down.
  void PublishWorkerStatus(bool shutdown);

  FleetPlan plan_;
  const data::Dataset* dataset_;
  FleetOptions options_;
  std::atomic<bool> stop_{false};
  FleetJournal journal_;
  std::unique_ptr<LeaseManager> leases_;

  /// Scheduler state: entries are stable (unique_ptr) so supervisors
  /// and the watchdog can hold references across queue mutations.
  std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  std::vector<std::unique_ptr<Entry>> entries_;
  bool accepting_ = false;
  std::size_t idle_workers_ = 0;
  std::size_t worker_count_ = 0;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::set<std::string> ingested_submissions_;

  /// Status publication state (watchdog thread + Run tail only).
  std::string status_worker_id_;
  std::uint64_t status_seq_ = 0;
  std::uint64_t last_status_ticks_ = 0;
  std::uint64_t run_start_ticks_ = 0;
};

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_FLEET_H_
