#include "orch/status.h"

#include <signal.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string_view>
#include <utility>

#include "obs/json.h"
#include "orch/json_reader.h"
#include "orch/lease.h"
#include "util/fsio.h"

namespace poisonrec::orch {

namespace {

double DefaultNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// kill(pid, 0) probes existence without signalling; EPERM still means
/// the pid is alive (owned by someone else). Meaningful because leases
/// are flock-scoped: the whole fleet shares this kernel.
bool DefaultPidAlive(std::uint64_t pid) {
  if (pid == 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;
}

double GetNumber(const JsonValue& object, std::string_view key,
                 double fallback) {
  const JsonValue* v = object.Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value : fallback;
}

std::uint64_t GetUint(const JsonValue& object, std::string_view key) {
  const double v = GetNumber(object, key, 0.0);
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

std::string GetString(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value : "";
}

bool GetBool(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  return v != nullptr && v->is_bool() && v->bool_value;
}

/// One campaign entry of a worker snapshot's "campaigns" array.
struct SnapshotCampaign {
  std::string id;
  std::string slot;
  std::string state;
  std::uint64_t step = 0;
  std::uint64_t total = 0;
  double last_reward = 0.0;
  double best_reward = 0.0;
  std::uint64_t restarts = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t token = 0;
  double step_rate = 0.0;
};

struct ParsedSnapshot {
  WorkerStatusRow row;
  std::vector<SnapshotCampaign> campaigns;
};

/// Parses one verified snapshot payload. False when it is not a
/// worker_status document (counted as snapshots_invalid).
bool ParseSnapshot(const std::string& payload, const std::string& path,
                   ParsedSnapshot* out) {
  StatusOr<JsonValue> parsed = ParseJson(payload);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const JsonValue& root = *parsed;
  if (GetString(root, "type") != "worker_status") return false;
  out->row.worker_id = GetString(root, "worker");
  if (out->row.worker_id.empty()) return false;
  out->row.pid = GetUint(root, "pid");
  out->row.host = GetString(root, "host");
  out->row.seq = GetUint(root, "seq");
  out->row.wall_unix = GetNumber(root, "wall_unix", 0.0);
  out->row.uptime_seconds = GetNumber(root, "uptime_seconds", 0.0);
  out->row.publish_period_seconds =
      GetNumber(root, "publish_period_seconds", 0.0);
  out->row.shared = GetBool(root, "shared");
  out->row.shutdown = GetBool(root, "shutdown");
  out->row.snapshot_path = path;
  const JsonValue* metrics = root.Find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    const JsonValue* counters = metrics->Find("counters");
    if (counters != nullptr && counters->is_object()) {
      for (const auto& [name, value] : counters->members) {
        if (value.is_number()) out->row.counters[name] = value.number_value;
      }
    }
  }
  const JsonValue* campaigns = root.Find("campaigns");
  if (campaigns != nullptr && campaigns->is_array()) {
    for (const JsonValue& entry : campaigns->array) {
      if (!entry.is_object()) continue;
      SnapshotCampaign campaign;
      campaign.id = GetString(entry, "id");
      if (campaign.id.empty()) continue;
      campaign.slot = GetString(entry, "slot");
      campaign.state = GetString(entry, "state");
      campaign.step = GetUint(entry, "step");
      campaign.total = GetUint(entry, "total");
      campaign.last_reward = GetNumber(entry, "last_reward", 0.0);
      campaign.best_reward = GetNumber(entry, "best_reward", 0.0);
      campaign.restarts = GetUint(entry, "restarts");
      campaign.preemptions = GetUint(entry, "preemptions");
      campaign.token = GetUint(entry, "token");
      campaign.step_rate = GetNumber(entry, "step_rate", 0.0);
      out->campaigns.push_back(std::move(campaign));
    }
  }
  return true;
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds < 0.0) return "-";
  std::snprintf(buffer, sizeof(buffer), "%.1fs", seconds);
  return buffer;
}

std::string FormatRate(double rate) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", rate);
  return buffer;
}

std::string Pad(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  text += "  ";
  return text;
}

}  // namespace

const char* WorkerHealthName(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kLive:
      return "live";
    case WorkerHealth::kStale:
      return "stale";
    case WorkerHealth::kExited:
      return "exited";
  }
  return "unknown";
}

FleetStatus CollectFleetStatus(const FleetStatusOptions& options) {
  FleetStatus status;
  const auto now_fn = options.now ? options.now : DefaultNow;
  const auto pid_alive =
      options.pid_alive ? options.pid_alive
                        : std::function<bool(std::uint64_t)>(DefaultPidAlive);
  status.collected_wall_unix = now_fn();

  const std::string telemetry_dir =
      !options.telemetry_dir.empty()
          ? options.telemetry_dir
          : (std::filesystem::path(options.checkpoint_dir) / "telemetry")
                .string();
  const std::string lease_dir =
      !options.lease_dir.empty()
          ? options.lease_dir
          : (std::filesystem::path(options.checkpoint_dir) / "leases")
                .string();

  // -- Journal family: authoritative campaign lifecycle ---------------------
  std::map<std::string, CampaignStatusRow> rows;
  const std::vector<std::string> journal_files =
      FleetJournal::ListJournalFiles(options.journal_path);
  bool journal_present = !journal_files.empty();
  if (journal_present) {
    StatusOr<JournalReplayResult> replayed =
        FleetJournal::Replay(journal_files);
    if (replayed.ok()) {
      status.hygiene.journal_files_merged = replayed->files_merged;
      status.hygiene.journal_malformed_lines = replayed->malformed_lines;
      status.hygiene.journal_torn_tail_lines = replayed->torn_tail_lines;
      status.hygiene.journal_corrupt_lines = replayed->corrupt_lines;
      status.hygiene.journal_stale_records = replayed->stale_records;
      for (const auto& [id, replay] : replayed->campaigns) {
        CampaignStatusRow& row = rows[id];
        row.id = id;
        row.state = replay.state;
        row.step = replay.steps_completed;
        row.restarts = replay.restarts;
        row.best_reward = replay.best_reward;
        row.token = replay.token;
        if (!replay.step_rewards.empty()) {
          row.last_reward = replay.step_rewards.rbegin()->second;
        }
      }
    } else {
      status.degraded_reasons.push_back("journal replay failed: " +
                                        replayed.status().ToString());
    }
  }

  // -- Leases: current ownership + heartbeat freshness ----------------------
  bool leases_present = false;
  {
    const LeaseManager reader(lease_dir, /*owner_id=*/"poisonrec-status",
                              /*ttl_seconds=*/0.0);
    std::error_code ec;
    std::vector<std::string> ids;
    for (std::filesystem::directory_iterator it(lease_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      if (it->path().extension() != ".lease") continue;
      ids.push_back(it->path().stem().string());
    }
    std::sort(ids.begin(), ids.end());
    leases_present = !ids.empty();
    for (const std::string& id : ids) {
      StatusOr<LeaseInfo> info = reader.Read(id);
      if (!info.ok()) {
        ++status.hygiene.leases_damaged;
        continue;
      }
      ++status.hygiene.leases_ok;
      CampaignStatusRow& row = rows[id];
      if (row.id.empty()) row.id = id;
      row.token = std::max(row.token, info->token);
      if (!info->owner.empty()) {
        row.owner = info->owner;
        row.lease_held = true;
        row.lease_expired =
            info->ttl_seconds > 0.0 &&
            status.collected_wall_unix - info->renewed_unix >
                info->ttl_seconds;
      }
    }
  }

  // -- Worker snapshots: liveness + live progress ---------------------------
  std::vector<ParsedSnapshot> snapshots;
  bool snapshots_present = false;
  {
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    for (std::filesystem::directory_iterator it(telemetry_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string name = it->path().filename().string();
      constexpr std::string_view kSuffix = ".status.json";
      if (name.size() <= kSuffix.size() ||
          name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
        continue;
      }
      files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    snapshots_present = !files.empty();
    // Keyed by worker id; a duplicate (two files claiming one worker)
    // resolves to the highest publication seq.
    std::map<std::string, ParsedSnapshot> by_worker;
    for (const std::filesystem::path& file : files) {
      FileIntegrity integrity = FileIntegrity::kOk;
      StatusOr<std::string> payload =
          ReadFileVerified(file.string(), &integrity);
      if (!payload.ok()) {
        switch (integrity) {
          case FileIntegrity::kTorn:
            ++status.hygiene.snapshots_torn;
            break;
          case FileIntegrity::kCorrupt:
            ++status.hygiene.snapshots_corrupt;
            break;
          default:
            // Raced a republish or vanished: not damage.
            break;
        }
        continue;
      }
      ParsedSnapshot parsed;
      if (!ParseSnapshot(*payload, file.string(), &parsed)) {
        ++status.hygiene.snapshots_invalid;
        continue;
      }
      ++status.hygiene.snapshots_ok;
      const std::string worker_id = parsed.row.worker_id;
      auto it2 = by_worker.find(worker_id);
      if (it2 == by_worker.end()) {
        by_worker.emplace(worker_id, std::move(parsed));
      } else if (parsed.row.seq > it2->second.row.seq) {
        it2->second = std::move(parsed);
      }
    }
    for (auto& [worker, parsed] : by_worker) {
      snapshots.push_back(std::move(parsed));
    }
  }

  // Classify worker health, then overlay live progress per campaign.
  std::set<std::string> stale_owners;
  for (ParsedSnapshot& snapshot : snapshots) {
    WorkerStatusRow& worker = snapshot.row;
    worker.age_seconds = status.collected_wall_unix - worker.wall_unix;
    if (worker.shutdown) {
      worker.health = WorkerHealth::kExited;
    } else {
      const double stale_after =
          options.stale_after_seconds > 0.0
              ? options.stale_after_seconds
              : std::max(3.0 * worker.publish_period_seconds, 2.0);
      if (!pid_alive(worker.pid)) {
        worker.health = WorkerHealth::kStale;
      } else if (worker.age_seconds > stale_after) {
        worker.health = WorkerHealth::kStale;
      } else {
        worker.health = WorkerHealth::kLive;
      }
    }
    if (worker.health == WorkerHealth::kStale) {
      stale_owners.insert(worker.worker_id);
    }

    for (const SnapshotCampaign& campaign : snapshot.campaigns) {
      CampaignStatusRow& row = rows[campaign.id];
      if (row.id.empty()) row.id = campaign.id;
      row.total = std::max(row.total, campaign.total);
      row.preemptions = std::max(row.preemptions, campaign.preemptions);
      if (campaign.slot != "running") continue;
      // Only a LIVE worker's "running" slot counts as live progress: a
      // stale worker's snapshot is a tombstone, and an exited worker
      // cannot still be running anything.
      if (worker.health != WorkerHealth::kLive) continue;
      row.running = true;
      if (row.owner.empty()) row.owner = worker.worker_id;
      row.step = std::max(row.step, campaign.step);
      row.token = std::max(row.token, campaign.token);
      row.restarts = std::max(row.restarts, campaign.restarts);
      if (campaign.last_reward != 0.0) row.last_reward = campaign.last_reward;
      if (campaign.best_reward > row.best_reward) {
        row.best_reward = campaign.best_reward;
      }
      row.step_rate = std::max(row.step_rate, campaign.step_rate);
    }
  }

  // -- Fold rollups + degradation -------------------------------------------
  for (auto& [id, row] : rows) {
    if (row.running && !IsTerminal(row.state)) {
      row.state = CampaignState::kRunning;
    }
    if (row.total > row.step && row.step_rate > 0.0) {
      row.eta_seconds =
          static_cast<double>(row.total - row.step) / row.step_rate;
    }
    const bool owner_stale =
        !row.owner.empty() && stale_owners.count(row.owner) > 0;
    row.stalled = !IsTerminal(row.state) &&
                  ((row.lease_held && row.lease_expired) || owner_stale);
  }

  for (ParsedSnapshot& snapshot : snapshots) {
    WorkerStatusRow& worker = snapshot.row;
    switch (worker.health) {
      case WorkerHealth::kLive:
        ++status.workers_live;
        break;
      case WorkerHealth::kStale: {
        ++status.workers_stale;
        char detail[160];
        std::snprintf(detail, sizeof(detail),
                      "worker %s stale (pid %llu %s, heartbeat %.1fs old)",
                      worker.worker_id.c_str(),
                      static_cast<unsigned long long>(worker.pid),
                      pid_alive(worker.pid) ? "alive" : "gone",
                      worker.age_seconds);
        status.degraded_reasons.push_back(detail);
        break;
      }
      case WorkerHealth::kExited:
        ++status.workers_exited;
        break;
    }
    for (const auto& [name, value] : worker.counters) {
      status.counters[name] += value;
    }
    status.workers.push_back(std::move(worker));
  }
  std::sort(status.workers.begin(), status.workers.end(),
            [](const WorkerStatusRow& a, const WorkerStatusRow& b) {
              return a.worker_id < b.worker_id;
            });

  for (auto& [id, row] : rows) {
    ++status.campaigns_by_state[CampaignStateName(row.state)];
    if (row.running) status.aggregate_step_rate += row.step_rate;
    if (row.state == CampaignState::kQuarantined) {
      status.degraded_reasons.push_back("campaign " + id + " quarantined");
    } else if (row.state == CampaignState::kFailed) {
      status.degraded_reasons.push_back("campaign " + id + " failed");
    } else if (row.stalled) {
      status.degraded_reasons.push_back(
          "campaign " + id + " stalled (" +
          (row.lease_held && row.lease_expired ? "lease expired"
                                               : "owner stale") +
          ")");
    }
    status.campaigns.push_back(std::move(row));
  }

  if (!journal_present && !snapshots_present && !leases_present) {
    status.degraded_reasons.push_back(
        "no fleet state found (journal, telemetry and lease inputs all "
        "absent)");
  }
  return status;
}

std::string FleetStatusJson(const FleetStatus& status) {
  std::string workers = "[";
  for (std::size_t i = 0; i < status.workers.size(); ++i) {
    const WorkerStatusRow& w = status.workers[i];
    if (i > 0) workers += ",";
    obs::JsonObjectBuilder b;
    b.Str("worker", w.worker_id)
        .Str("health", WorkerHealthName(w.health))
        .Int("pid", w.pid)
        .Str("host", w.host)
        .Int("seq", w.seq)
        .Num("wall_unix", w.wall_unix)
        .Num("uptime_seconds", w.uptime_seconds)
        .Num("age_seconds", w.age_seconds)
        .Num("publish_period_seconds", w.publish_period_seconds)
        .Bool("shared", w.shared)
        .Bool("shutdown", w.shutdown)
        .Str("snapshot", w.snapshot_path);
    workers += std::move(b).Finish();
  }
  workers += "]";

  std::string campaigns = "[";
  for (std::size_t i = 0; i < status.campaigns.size(); ++i) {
    const CampaignStatusRow& c = status.campaigns[i];
    if (i > 0) campaigns += ",";
    obs::JsonObjectBuilder b;
    b.Str("id", c.id)
        .Str("state", CampaignStateName(c.state))
        .Str("owner", c.owner)
        .Int("token", c.token)
        .Int("step", c.step)
        .Int("total", c.total)
        .Num("last_reward", c.last_reward)
        .Num("best_reward", c.best_reward)
        .Int("restarts", c.restarts)
        .Int("preemptions", c.preemptions)
        .Num("step_rate", c.step_rate)
        .Num("eta_seconds", c.eta_seconds)
        .Bool("running", c.running)
        .Bool("lease_held", c.lease_held)
        .Bool("lease_expired", c.lease_expired)
        .Bool("stalled", c.stalled);
    campaigns += std::move(b).Finish();
  }
  campaigns += "]";

  std::string by_state = "{";
  {
    bool first = true;
    for (const auto& [name, count] : status.campaigns_by_state) {
      if (!first) by_state += ",";
      first = false;
      obs::AppendJsonString(&by_state, name);
      by_state += ":";
      obs::AppendJsonNumber(&by_state, static_cast<std::uint64_t>(count));
    }
  }
  by_state += "}";

  std::string counters = "{";
  {
    bool first = true;
    for (const auto& [name, value] : status.counters) {
      if (!first) counters += ",";
      first = false;
      obs::AppendJsonString(&counters, name);
      counters += ":";
      obs::AppendJsonNumber(&counters, value);
    }
  }
  counters += "}";

  std::string reasons = "[";
  for (std::size_t i = 0; i < status.degraded_reasons.size(); ++i) {
    if (i > 0) reasons += ",";
    obs::AppendJsonString(&reasons, status.degraded_reasons[i]);
  }
  reasons += "]";

  obs::JsonObjectBuilder summary;
  summary.Int("workers", status.workers.size())
      .Int("workers_live", status.workers_live)
      .Int("workers_stale", status.workers_stale)
      .Int("workers_exited", status.workers_exited)
      .Int("campaigns", status.campaigns.size())
      .Raw("campaigns_by_state", by_state)
      .Num("aggregate_step_rate", status.aggregate_step_rate);

  obs::JsonObjectBuilder hygiene;
  hygiene.Int("snapshots_ok", status.hygiene.snapshots_ok)
      .Int("snapshots_torn", status.hygiene.snapshots_torn)
      .Int("snapshots_corrupt", status.hygiene.snapshots_corrupt)
      .Int("snapshots_invalid", status.hygiene.snapshots_invalid)
      .Int("leases_ok", status.hygiene.leases_ok)
      .Int("leases_damaged", status.hygiene.leases_damaged)
      .Int("journal_files_merged", status.hygiene.journal_files_merged)
      .Int("journal_malformed_lines", status.hygiene.journal_malformed_lines)
      .Int("journal_torn_tail_lines", status.hygiene.journal_torn_tail_lines)
      .Int("journal_corrupt_lines", status.hygiene.journal_corrupt_lines)
      .Int("journal_stale_records", status.hygiene.journal_stale_records);

  obs::JsonObjectBuilder root;
  root.Str("type", "fleet_status")
      .Num("collected_wall_unix", status.collected_wall_unix)
      .Bool("degraded", status.degraded())
      .Int("exit_code", static_cast<std::uint64_t>(status.ExitCode()))
      .Raw("degraded_reasons", reasons)
      .Raw("summary", std::move(summary).Finish())
      .Raw("hygiene", std::move(hygiene).Finish())
      .Raw("workers", workers)
      .Raw("campaigns", campaigns)
      .Raw("counters", counters);
  return std::move(root).Finish();
}

std::string FormatFleetStatusTable(const FleetStatus& status) {
  std::string out;
  out += "fleet status: ";
  out += status.degraded() ? "DEGRADED (exit 2)" : "healthy (exit 0)";
  out += "\n";

  char line[256];
  std::snprintf(line, sizeof(line),
                "workers: %zu live, %zu stale, %zu exited | campaigns: %zu",
                status.workers_live, status.workers_stale,
                status.workers_exited, status.campaigns.size());
  out += line;
  bool first = true;
  for (const auto& [name, count] : status.campaigns_by_state) {
    out += first ? " (" : ", ";
    first = false;
    out += name + " " + std::to_string(count);
  }
  if (!first) out += ")";
  std::snprintf(line, sizeof(line), " | throughput: %.2f steps/s\n",
                status.aggregate_step_rate);
  out += line;

  if (!status.campaigns.empty()) {
    out += "\n";
    out += Pad("CAMPAIGN", 16) + Pad("STATE", 12) + Pad("OWNER", 18) +
           Pad("TOK", 4) + Pad("STEP", 9) + Pad("REWARD", 8) +
           Pad("RATE/S", 7) + Pad("ETA", 8) + "FLAGS\n";
    for (const CampaignStatusRow& c : status.campaigns) {
      std::string step = std::to_string(c.step);
      if (c.total > 0) step += "/" + std::to_string(c.total);
      char reward[32];
      std::snprintf(reward, sizeof(reward), "%.4f", c.last_reward);
      std::string flags;
      if (c.stalled) flags += "stalled ";
      if (c.lease_held) {
        flags += c.lease_expired ? "lease-expired " : "leased ";
      }
      if (c.restarts > 0) {
        flags += "restarts=" + std::to_string(c.restarts) + " ";
      }
      if (c.preemptions > 0) {
        flags += "preemptions=" + std::to_string(c.preemptions) + " ";
      }
      if (!flags.empty()) flags.pop_back();
      out += Pad(c.id, 16) + Pad(CampaignStateName(c.state), 12) +
             Pad(c.owner.empty() ? "-" : c.owner, 18) +
             Pad(std::to_string(c.token), 4) + Pad(step, 9) +
             Pad(reward, 8) + Pad(FormatRate(c.step_rate), 7) +
             Pad(FormatSeconds(c.eta_seconds), 8) + flags + "\n";
    }
  }

  if (!status.workers.empty()) {
    out += "\n";
    out += Pad("WORKER", 18) + Pad("HEALTH", 7) + Pad("PID", 8) +
           Pad("AGE", 8) + Pad("SEQ", 5) + "HOST\n";
    for (const WorkerStatusRow& w : status.workers) {
      out += Pad(w.worker_id, 18) + Pad(WorkerHealthName(w.health), 7) +
             Pad(std::to_string(w.pid), 8) +
             Pad(FormatSeconds(w.age_seconds), 8) +
             Pad(std::to_string(w.seq), 5) + w.host + "\n";
    }
  }

  const FleetStatusHygiene& h = status.hygiene;
  std::snprintf(line, sizeof(line),
                "\nhygiene: snapshots %zu ok / %zu torn / %zu corrupt / %zu "
                "invalid; leases %zu ok / %zu damaged; journal %zu file(s), "
                "%llu malformed / %llu torn-tail / %llu corrupt / %llu stale "
                "line(s)\n",
                h.snapshots_ok, h.snapshots_torn, h.snapshots_corrupt,
                h.snapshots_invalid, h.leases_ok, h.leases_damaged,
                h.journal_files_merged,
                static_cast<unsigned long long>(h.journal_malformed_lines),
                static_cast<unsigned long long>(h.journal_torn_tail_lines),
                static_cast<unsigned long long>(h.journal_corrupt_lines),
                static_cast<unsigned long long>(h.journal_stale_records));
  out += line;

  if (status.degraded()) {
    out += "degraded because:\n";
    for (const std::string& reason : status.degraded_reasons) {
      out += "  - " + reason + "\n";
    }
  }
  return out;
}

}  // namespace poisonrec::orch
