#include "data/synthetic.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::data {

const char* DatasetPresetName(DatasetPreset preset) {
  switch (preset) {
    case DatasetPreset::kSteam:
      return "Steam";
    case DatasetPreset::kMovieLens:
      return "MovieLens";
    case DatasetPreset::kPhone:
      return "Phone";
    case DatasetPreset::kClothing:
      return "Clothing";
  }
  return "?";
}

StatusOr<DatasetPreset> ParseDatasetPreset(const std::string& name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "steam") return DatasetPreset::kSteam;
  if (lower == "movielens" || lower == "movielens-1m" || lower == "ml-1m") {
    return DatasetPreset::kMovieLens;
  }
  if (lower == "phone") return DatasetPreset::kPhone;
  if (lower == "clothing") return DatasetPreset::kClothing;
  return Status::InvalidArgument("unknown dataset preset '" + name + "'");
}

SyntheticConfig PresetConfig(DatasetPreset preset, double scale,
                             std::uint64_t seed) {
  POISONREC_CHECK_GT(scale, 0.0);
  SyntheticConfig config;
  config.seed = seed;
  // Table II of the paper.
  switch (preset) {
    case DatasetPreset::kSteam:
      config.num_users = 6506;
      config.num_items = 5134;
      config.num_interactions = 180721;
      config.popularity_exponent = 1.0;
      config.cluster_affinity = 0.6;
      break;
    case DatasetPreset::kMovieLens:
      // MovieLens is dense: ~254 events per item on average, which the
      // paper calls out as making fake popularity hard to build.
      config.num_users = 5999;
      config.num_items = 3706;
      config.num_interactions = 943317;
      config.popularity_exponent = 0.8;
      config.cluster_affinity = 0.5;
      break;
    case DatasetPreset::kPhone:
      config.num_users = 27879;
      config.num_items = 10429;
      config.num_interactions = 166560;
      config.popularity_exponent = 1.1;
      config.cluster_affinity = 0.65;
      break;
    case DatasetPreset::kClothing:
      config.num_users = 39387;
      config.num_items = 23033;
      config.num_interactions = 239290;
      config.popularity_exponent = 1.1;
      config.cluster_affinity = 0.65;
      break;
  }
  auto scaled = [scale](std::size_t v) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(v * scale)));
  };
  config.num_users = scaled(config.num_users);
  config.num_items = scaled(config.num_items);
  config.num_interactions = scaled(config.num_interactions);
  config.num_clusters =
      std::max<std::size_t>(2, config.num_items / 64);
  return config;
}

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  POISONREC_CHECK_GE(config.num_users, 1u);
  POISONREC_CHECK_GE(config.num_items, 1u);
  POISONREC_CHECK_GE(
      config.num_interactions,
      config.num_users * config.min_user_length)
      << "not enough interactions to give every user min_user_length";

  Rng rng(config.seed);
  const std::size_t n_items = config.num_items;
  const std::size_t n_clusters = std::min(config.num_clusters, n_items);

  // Global popularity: item ids shuffled, then ranked by a Zipf law so
  // that popularity is independent of id order.
  std::vector<ItemId> rank_to_item(n_items);
  for (std::size_t i = 0; i < n_items; ++i) rank_to_item[i] = i;
  rng.Shuffle(&rank_to_item);
  ZipfTable global_zipf(n_items, config.popularity_exponent);

  // Cluster assignment: contiguous popularity ranks spread across clusters
  // round-robin so every cluster mixes popular and long-tail items.
  std::vector<std::vector<ItemId>> cluster_items(n_clusters);
  std::vector<std::size_t> item_cluster(n_items);
  for (std::size_t r = 0; r < n_items; ++r) {
    const std::size_t c = r % n_clusters;
    cluster_items[c].push_back(rank_to_item[r]);
    item_cluster[rank_to_item[r]] = c;
  }
  // Per-cluster Zipf over that cluster's items (by their within-cluster
  // order, which follows global rank).
  std::vector<ZipfTable> cluster_zipf;
  cluster_zipf.reserve(n_clusters);
  for (std::size_t c = 0; c < n_clusters; ++c) {
    cluster_zipf.emplace_back(cluster_items[c].size(),
                              config.popularity_exponent);
  }

  // User activity: heterogenous lengths via a Zipf over users, floored at
  // min_user_length, rescaled to hit the interaction budget.
  const std::size_t n_users = config.num_users;
  std::vector<double> raw_len(n_users);
  double raw_total = 0.0;
  for (std::size_t u = 0; u < n_users; ++u) {
    raw_len[u] = 1.0 / std::pow(static_cast<double>(u + 1), 0.7);
    raw_total += raw_len[u];
  }
  const double extra_budget = static_cast<double>(
      config.num_interactions - n_users * config.min_user_length);
  std::vector<std::size_t> user_len(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    user_len[u] = config.min_user_length +
                  static_cast<std::size_t>(
                      std::floor(extra_budget * raw_len[u] / raw_total));
  }

  Dataset dataset(n_users, n_items);
  // Randomize which user gets which length so user id carries no signal.
  std::vector<UserId> user_order(n_users);
  for (std::size_t u = 0; u < n_users; ++u) user_order[u] = u;
  rng.Shuffle(&user_order);

  for (std::size_t slot = 0; slot < n_users; ++slot) {
    const UserId user = user_order[slot];
    const std::size_t len = user_len[slot];
    // Each user prefers 1-3 clusters.
    const std::size_t n_pref = 1 + rng.Index(3);
    std::vector<std::size_t> preferred(n_pref);
    for (std::size_t i = 0; i < n_pref; ++i) {
      preferred[i] = rng.Index(n_clusters);
    }
    std::size_t current_cluster = preferred[0];
    for (std::size_t t = 0; t < len; ++t) {
      ItemId item;
      if (rng.Uniform() < config.cluster_affinity) {
        // Stay coherent: sample within the current cluster; occasionally
        // hop to another preferred cluster.
        if (rng.Uniform() < 0.15) {
          current_cluster = preferred[rng.Index(n_pref)];
        }
        const auto& members = cluster_items[current_cluster];
        item = members[cluster_zipf[current_cluster].Sample(&rng)];
      } else {
        const std::size_t rank = global_zipf.Sample(&rng);
        item = rank_to_item[rank];
        current_cluster = item_cluster[item];
      }
      dataset.Add(user, item);
    }
  }
  return dataset;
}

}  // namespace poisonrec::data
