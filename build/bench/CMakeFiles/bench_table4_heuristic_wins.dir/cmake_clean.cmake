file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_heuristic_wins.dir/bench_table4_heuristic_wins.cc.o"
  "CMakeFiles/bench_table4_heuristic_wins.dir/bench_table4_heuristic_wins.cc.o.d"
  "bench_table4_heuristic_wins"
  "bench_table4_heuristic_wins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_heuristic_wins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
