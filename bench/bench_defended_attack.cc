// Adaptive-defender sweep (beyond the paper; its stated future-work
// direction). The platform runs the detection ensemble in production:
// every `detection_interval` reward queries it audits the accumulated
// poison log and permanently bans the top-suspicion fake accounts. The
// sweep crosses defender aggressiveness (bans per sweep) with the
// attacker's replacement-account reserve and reports how much attack
// damage survives, how many accounts the campaign burned, and whether
// the campaign ran out of accounts entirely (kResourceExhausted abort).
// Expected: without a pool the fleet shrinks monotonically and RecNum
// collapses under an aggressive defender; a funded pool sustains most of
// the undefended damage at the price of burned accounts.
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "core/ppo.h"
#include "defense/detector.h"
#include "env/defended.h"
#include "env/fault.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  const std::string ranker =
      config.rankers.empty() ? "ItemPop" : config.rankers.front();
  std::printf(
      "== Defended attack: damage vs defender aggressiveness x pool size "
      "(%s on Steam, scale=%.3g) ==\n\n",
      ranker.c_str(), config.scale);

  // Undefended reference for the sustain ratio.
  double undefended = 0.0;
  {
    auto environment =
        MakeEnvironment(config, data::DatasetPreset::kSteam, ranker);
    core::PoisonRecAttacker attacker(
        environment.get(),
        MakePoisonRecConfig(config, core::ActionSpaceKind::kBcbtPopular,
                            config.seed ^ 0xdefu));
    attacker.Train(config.training_steps);
    undefended = environment->Evaluate(attacker.BestAttack());
  }
  std::printf("undefended RecNum %.0f\n\n", undefended);

  PrintTableHeader({"bans/sweep", "reserve", "RecNum", "sustain", "banned",
                    "pool left", "status"});
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"bans_per_sweep", "pool_reserve", "recnum", "sustain_ratio",
                  "banned_accounts", "pool_remaining", "status"});
  for (const std::size_t bans_per_sweep : {1u, 2u, 4u}) {
    for (const std::size_t reserve : {0u, 10u, 40u}) {
      BenchConfig cell = config;
      cell.num_attackers = config.num_attackers + reserve;
      auto environment =
          MakeEnvironment(cell, data::DatasetPreset::kSteam, ranker);

      env::FaultProfile faults;  // clean channel; defense is the variable
      faults.seed = config.seed ^ 0x0fbu;
      env::FaultyEnvironment faulty(environment.get(), faults);

      env::DefenseProfile defense;
      // One sweep per training step: even short CI-scale campaigns
      // exercise the ban machinery.
      defense.detection_interval = config.samples_per_step;
      defense.bans_per_sweep = bans_per_sweep;
      defense.seed = config.seed ^ 0x0fcu;
      env::DefendedEnvironment platform(
          &faulty, defense::MakeDefaultEnsemble(), defense);

      core::PoisonRecConfig attacker_config = MakePoisonRecConfig(
          config, core::ActionSpaceKind::kBcbtPopular,
          config.seed ^ (bans_per_sweep * 131 + reserve));
      if (reserve > 0) {
        attacker_config.pool.enabled = true;
        attacker_config.pool.reserve_accounts = reserve;
        attacker_config.pool.min_live_attackers = 2;
      }
      core::PoisonRecAttacker attacker(environment.get(), attacker_config);
      attacker.AttachDefendedEnvironment(&platform);
      const auto stats = attacker.Train(config.training_steps);

      // Re-score the learned best attack on the clean channel so the
      // number isolates what the attacker learned from what the defender
      // suppressed mid-training.
      const double rec_num = environment->Evaluate(attacker.BestAttack());
      const double sustain = undefended > 0.0 ? rec_num / undefended : 0.0;
      const std::size_t banned = platform.BannedAccounts().size();
      const std::size_t pool_left =
          stats.empty() ? reserve : stats.back().pool_remaining;
      const std::string status =
          attacker.campaign_status().ok() ? "ok" : "exhausted";
      PrintTableRow({std::to_string(bans_per_sweep), std::to_string(reserve),
                     FormatCount(rec_num), FormatCount(sustain),
                     std::to_string(banned), std::to_string(pool_left),
                     status});
      rows.push_back({std::to_string(bans_per_sweep), std::to_string(reserve),
                      FormatCount(rec_num), std::to_string(sustain),
                      std::to_string(banned), std::to_string(pool_left),
                      status});
    }
  }
  WriteCsvOutput(config, "defended_attack.csv", rows);
  WriteJsonOutput(config, "defended_attack.json", rows);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
