# Empty compiler generated dependencies file for poisonrec_defense.
# This may be replaced when dependencies are built.
