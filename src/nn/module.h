// Neural-net building blocks: Linear, Embedding, MLP, LSTMCell, GRUCell.
// Each module owns parameter Tensors and exposes them via Parameters() so
// optimizers can update them and models can clone/serialize.
#ifndef POISONREC_NN_MODULE_H_
#define POISONREC_NN_MODULE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/random.h"

namespace poisonrec::nn {

/// Base class for parameterized modules.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters (aliases; mutating them updates the module).
  virtual std::vector<Tensor> Parameters() const = 0;

  /// Total scalar parameter count.
  std::size_t NumParameters() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Copies parameter values from `other` (must have identical topology).
  void CopyParametersFrom(const Module& other);
};

/// Affine map y = x W + b with W: (in x out), b: (1 x out).
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng* rng);

  Tensor Forward(const Tensor& x) const;
  std::vector<Tensor> Parameters() const override;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;
  Tensor bias_;
};

/// Embedding table (n x dim); lookup by index list.
class Embedding : public Module {
 public:
  Embedding(std::size_t count, std::size_t dim, Rng* rng,
            float stddev = 0.1f);

  /// Rows of the table for the given ids -> (|ids| x dim).
  Tensor Forward(const std::vector<std::size_t>& ids) const;
  std::vector<Tensor> Parameters() const override;

  const Tensor& table() const { return table_; }
  Tensor& mutable_table() { return table_; }
  std::size_t count() const { return table_.rows(); }
  std::size_t dim() const { return table_.cols(); }

 private:
  Tensor table_;
};

/// Multi-layer perceptron with ReLU between layers (none after the last).
class Mlp : public Module {
 public:
  /// `sizes` = {in, hidden..., out}; at least 2 entries.
  Mlp(const std::vector<std::size_t>& sizes, Rng* rng);

  Tensor Forward(const Tensor& x) const;
  std::vector<Tensor> Parameters() const override;

  const std::vector<Linear>& layers() const { return layers_; }

 private:
  std::vector<Linear> layers_;
};

/// Single LSTM cell. Gate order in the fused weight matrices: input,
/// forget, cell (g), output. Weights: W_x (in x 4h), W_h (h x 4h),
/// bias (1 x 4h) with forget-gate bias initialized to 1.
class LstmCell : public Module {
 public:
  LstmCell(std::size_t input_size, std::size_t hidden_size, Rng* rng);

  struct State {
    Tensor h;  // (batch x hidden)
    Tensor c;  // (batch x hidden)
  };

  /// Zero initial state for a batch.
  State InitialState(std::size_t batch) const;

  /// One step: consumes x (batch x in) and the previous state.
  State Step(const Tensor& x, const State& state) const;

  std::vector<Tensor> Parameters() const override;

  std::size_t hidden_size() const { return hidden_size_; }
  std::size_t input_size() const { return input_size_; }

 private:
  std::size_t input_size_;
  std::size_t hidden_size_;
  Tensor w_x_;
  Tensor w_h_;
  Tensor bias_;
};

/// Single GRU cell (update z, reset r, candidate n). Weights: W_x
/// (in x 3h), W_h (h x 3h), biases b_x, b_h (1 x 3h).
class GruCell : public Module {
 public:
  GruCell(std::size_t input_size, std::size_t hidden_size, Rng* rng);

  Tensor InitialState(std::size_t batch) const;

  /// One step: h' = (1-z)*n + z*h.
  Tensor Step(const Tensor& x, const Tensor& h) const;

  std::vector<Tensor> Parameters() const override;

  std::size_t hidden_size() const { return hidden_size_; }
  std::size_t input_size() const { return input_size_; }

 private:
  std::size_t input_size_;
  std::size_t hidden_size_;
  Tensor w_x_;
  Tensor w_h_;
  Tensor b_x_;
  Tensor b_h_;
};

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_MODULE_H_
