// Orchestrator tests: plan parsing/expansion, the crash-durable journal,
// supervisor fault classification (restart / quarantine / graceful
// stop), and whole-fleet runs including in-process interrupt + resume
// with bit-identical recovered rewards.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "orch/fleet.h"
#include "orch/journal.h"
#include "orch/json_reader.h"
#include "orch/spec.h"
#include "orch/supervisor.h"

namespace poisonrec::orch {
namespace {

std::string TempDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

data::Dataset MakeLog() {
  data::SyntheticConfig cfg;
  cfg.num_users = 120;
  cfg.num_items = 90;
  cfg.num_interactions = 1400;
  cfg.seed = 3;
  return data::GenerateSynthetic(cfg);
}

/// A campaign small enough to finish in tens of milliseconds but large
/// enough that steps produce observable reward structure.
CampaignSpec FastSpec(const std::string& id, std::uint64_t seed = 7) {
  CampaignSpec spec;
  spec.id = id;
  spec.steps = 3;
  spec.samples_per_step = 4;
  spec.attackers = 5;
  spec.trajectory_length = 5;
  spec.num_target_items = 2;
  spec.embedding_dim = 8;
  spec.max_eval_users = 48;
  spec.seed = seed;
  return spec;
}

// -- JSON reader ------------------------------------------------------------

TEST(JsonReaderTest, ParsesScalarsArraysAndNestedObjects) {
  auto parsed = ParseJson(
      R"({"s":"a\nb\u0041","n":-2.5e2,"t":true,"f":false,"z":null,)"
      R"("arr":[1,[2,3],{"k":"v"}]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("s")->string_value, "a\nbA");
  EXPECT_DOUBLE_EQ(root.Find("n")->number_value, -250.0);
  EXPECT_TRUE(root.Find("t")->bool_value);
  EXPECT_FALSE(root.Find("f")->bool_value);
  EXPECT_TRUE(root.Find("z")->is_null());
  const JsonValue* arr = root.Find("arr");
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->array[0].number_value, 1.0);
  EXPECT_EQ(arr->array[1].array.size(), 2u);
  EXPECT_EQ(arr->array[2].Find("k")->string_value, "v");
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,\"a\":2}").ok());  // duplicate key
  EXPECT_FALSE(ParseJson("[1 2]").ok());
  EXPECT_FALSE(ParseJson("\"\\ud800\"").ok());  // lone surrogate
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonReaderTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// -- Plan parsing -----------------------------------------------------------

TEST(SpecTest, ParsesDefaultsCampaignsAndSweepCrossProduct) {
  auto plan = ParseFleetPlanText(R"({
    "name": "nightly", "dataset": "MovieLens", "scale": 0.1,
    "defaults": {"steps": 4, "attackers": 7, "stall_timeout_seconds": 2.5},
    "campaigns": [{"id": "pinned", "ranker": "BPR", "priority": 3}],
    "sweep": {"rankers": ["ItemPop", "CoVisitation"],
              "fault_presets": ["clean", "flaky"],
              "defenses": [false, true],
              "budgets": [4]}
  })");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->name, "nightly");
  EXPECT_EQ(plan->dataset, "MovieLens");
  // 1 explicit + 2*2*2*1 swept.
  ASSERT_EQ(plan->campaigns.size(), 9u);
  const CampaignSpec& pinned = plan->campaigns[0];
  EXPECT_EQ(pinned.id, "pinned");
  EXPECT_EQ(pinned.ranker, "BPR");
  EXPECT_EQ(pinned.priority, 3);
  EXPECT_EQ(pinned.steps, 4u);          // from defaults
  EXPECT_EQ(pinned.attackers, 7u);      // from defaults
  EXPECT_DOUBLE_EQ(pinned.stall_timeout_seconds, 2.5);
  // Sweep ids are deterministic, and each cell gets its own seed.
  EXPECT_EQ(plan->campaigns[1].id, "ItemPop-clean-nodef-s4");
  EXPECT_EQ(plan->campaigns[2].id, "ItemPop-clean-def-s4");
  EXPECT_TRUE(plan->campaigns[2].defense);
  EXPECT_EQ(plan->campaigns[3].id, "ItemPop-flaky-nodef-s4");
  EXPECT_GT(plan->campaigns[3].fault.query_failure_rate, 0.0);
  EXPECT_NE(plan->campaigns[1].seed, plan->campaigns[2].seed);
}

TEST(SpecTest, RejectsUnknownKeysAndBadPlans) {
  // Misspelled supervision knob must fail loudly, not run unwatched.
  auto typo = ParseFleetPlanText(
      R"({"campaigns":[{"id":"a","stall_timeout_secs":1}]})");
  EXPECT_FALSE(typo.ok());
  EXPECT_NE(typo.status().message().find("stall_timeout_secs"),
            std::string::npos);

  EXPECT_FALSE(ParseFleetPlanText(R"({"campaigns":[]})").ok());
  EXPECT_FALSE(
      ParseFleetPlanText(R"({"campaigns":[{"id":"dup"},{"id":"dup"}]})")
          .ok());
  EXPECT_FALSE(
      ParseFleetPlanText(R"({"campaigns":[{"id":"bad id!"}]})").ok());
  EXPECT_FALSE(
      ParseFleetPlanText(R"({"defaults":{"id":"x"},"campaigns":[{"id":"a"}]})")
          .ok());
  EXPECT_FALSE(
      ParseFleetPlanText(R"({"campaigns":[{"id":"a","fault_preset":"wat"}]})")
          .ok());
  // Stale-reward faults break bit-identical recovery; refused up front.
  EXPECT_FALSE(ParseFleetPlanText(
                   R"({"campaigns":[{"id":"a","fault":{"stale":0.2}}]})")
                   .ok());
}

TEST(SpecTest, AttackerConfigIsGuardedAndSingleThreaded) {
  CampaignSpec spec = FastSpec("cfg");
  spec.retry_attempts = 6;
  spec.retry_deadline_seconds = 1.5;
  const core::PoisonRecConfig config = MakeAttackerConfig(spec);
  EXPECT_TRUE(config.guard.enabled);
  EXPECT_EQ(config.num_threads, 1u);
  EXPECT_FALSE(config.parallel_rewards);
  EXPECT_EQ(config.retry.max_attempts, 6u);
  EXPECT_DOUBLE_EQ(config.retry.max_elapsed_seconds, 1.5);
}

// -- Journal ----------------------------------------------------------------

TEST(JournalTest, ReplayFoldsRecordsAndSkipsTornTrailingLine) {
  const std::string dir = TempDir("poisonrec_journal_test");
  const std::string path = dir + "/journal.jsonl";
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(path, /*truncate=*/true).ok());
    CampaignJournalRecord r;
    r.campaign_id = "a";
    r.state = CampaignState::kPending;
    ASSERT_TRUE(journal.Record(r));
    r.state = CampaignState::kRunning;
    ASSERT_TRUE(journal.Record(r));
    r.state = CampaignState::kCheckpointed;
    r.step = 1;
    r.reward = 2.0;
    r.best_reward = 2.0;
    ASSERT_TRUE(journal.Record(r));
    r.step = 2;
    r.reward = 5.0;
    r.best_reward = 5.0;
    ASSERT_TRUE(journal.Record(r));
    CampaignJournalRecord q;
    q.campaign_id = "b";
    q.state = CampaignState::kQuarantined;
    q.detail = "stalled";
    q.restarts = 2;
    ASSERT_TRUE(journal.Record(q));
    journal.Close();
  }
  // Simulate a crash mid-append: a torn half-line at the tail.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"type\":\"campaign\",\"id\":\"a\",\"sta";
  }
  auto replay = FleetJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->size(), 2u);
  const CampaignReplay& a = replay->at("a");
  EXPECT_EQ(a.state, CampaignState::kCheckpointed);
  EXPECT_EQ(a.steps_completed, 2u);
  ASSERT_EQ(a.step_rewards.size(), 2u);
  EXPECT_DOUBLE_EQ(a.step_rewards.at(1), 2.0);
  EXPECT_DOUBLE_EQ(a.step_rewards.at(2), 5.0);
  EXPECT_DOUBLE_EQ(a.best_reward, 5.0);
  const CampaignReplay& b = replay->at("b");
  EXPECT_TRUE(IsTerminal(b.state));
  EXPECT_EQ(b.detail, "stalled");
  EXPECT_EQ(b.restarts, 2u);

  EXPECT_FALSE(FleetJournal::ReplayFile(dir + "/missing.jsonl").ok());
  std::filesystem::remove_all(dir);
}

TEST(JournalTest, CorruptedMidFileRecordIsSkippedAndCounted) {
  const std::string dir = TempDir("poisonrec_journal_corrupt");
  const std::string path = dir + "/journal.jsonl";
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(path, /*truncate=*/true).ok());
    CampaignJournalRecord r;
    r.campaign_id = "a";
    r.state = CampaignState::kCheckpointed;
    for (std::uint64_t step = 1; step <= 3; ++step) {
      r.step = step;
      r.reward = static_cast<double>(step) * 2.0;
      r.best_reward = r.reward;
      ASSERT_TRUE(journal.Record(r));
    }
    r.state = CampaignState::kDone;
    ASSERT_TRUE(journal.Record(r));
    journal.Close();
  }
  // Rot one byte of the step-2 record. The line stays structurally
  // valid JSON — a parser alone would happily fold the wrong reward —
  // but its CRC32C line checksum no longer matches.
  {
    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    in.close();
    ASSERT_EQ(lines.size(), 4u);
    const std::size_t pos = lines[1].find("\"reward\":");
    ASSERT_NE(pos, std::string::npos) << lines[1];
    lines[1][pos + 9] ^= 0x1;  // flip a bit of the reward digit
    std::ofstream out(path, std::ios::trunc);
    for (const std::string& line : lines) out << line << "\n";
  }
  auto merged = FleetJournal::Replay({path});
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->corrupt_lines, 1u);
  EXPECT_EQ(merged->malformed_lines, 0u);
  EXPECT_EQ(merged->torn_tail_lines, 0u);
  const CampaignReplay& a = merged->campaigns.at("a");
  // The rotted record is skipped, not trusted: step 2's reward is gone,
  // the surrounding fold is untouched.
  EXPECT_EQ(a.state, CampaignState::kDone);
  ASSERT_EQ(a.step_rewards.size(), 2u);
  EXPECT_DOUBLE_EQ(a.step_rewards.at(1), 2.0);
  EXPECT_DOUBLE_EQ(a.step_rewards.at(3), 6.0);
  EXPECT_EQ(a.step_rewards.count(2), 0u);
  std::filesystem::remove_all(dir);
}

TEST(JournalTest, StateNamesRoundTrip) {
  for (const CampaignState state :
       {CampaignState::kPending, CampaignState::kRunning,
        CampaignState::kCheckpointed, CampaignState::kDone,
        CampaignState::kQuarantined, CampaignState::kFailed,
        CampaignState::kPreempted}) {
    auto parsed = ParseCampaignState(CampaignStateName(state));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, state);
  }
  EXPECT_FALSE(ParseCampaignState("resting").ok());
}

TEST(JournalTest, TokenAwareMergeRejectsStaleEpochsInAnyOrder) {
  const std::string dir = TempDir("poisonrec_journal_merge");
  const std::string a_path = dir + "/journal.wA.jsonl";
  const std::string b_path = dir + "/journal.wB.jsonl";
  // Worker A owned epoch 1 (token 1), committed steps 1-2, then lost
  // the lease. Its file also carries an unknown record type (ignored)
  // and a corrupted interior line (counted as real corruption).
  {
    std::ofstream a(a_path);
    a << R"({"type":"campaign","id":"c","state":"pending","token":1,"owner":"wA"})"
      << "\n"
      << R"({"type":"campaign","id":"c","state":"running","token":1,"owner":"wA"})"
      << "\n"
      << R"({"type":"campaign","id":"c","state":"checkpointed","step":1,"reward":1.5,"best_reward":1.5,"token":1,"owner":"wA"})"
      << "\n"
      << R"({"type":"note","detail":"unknown record types are ignored"})"
      << "\n"
      << "%% corrupted interior line %%\n"
      << R"({"type":"campaign","id":"c","state":"checkpointed","step":2,"reward":2.5,"best_reward":2.5,"token":1,"owner":"wA"})"
      << "\n";
  }
  // Worker B seized the campaign (token 2), committed step 3, finished,
  // and was then killed mid-append (torn trailing line).
  {
    std::ofstream b(b_path);
    b << R"({"type":"campaign","id":"c","state":"running","token":2,"owner":"wB"})"
      << "\n"
      << R"({"type":"campaign","id":"c","state":"checkpointed","step":3,"reward":3.5,"best_reward":3.5,"token":2,"owner":"wB"})"
      << "\n"
      << R"({"type":"campaign","id":"c","state":"done","step":3,"reward":3.5,"best_reward":3.5,"token":2,"owner":"wB"})"
      << "\n"
      << R"({"type":"campaign","id":"c","sta)";
  }

  // ListJournalFiles finds the whole per-worker family of the base path.
  const std::vector<std::string> family =
      FleetJournal::ListJournalFiles(dir + "/journal.jsonl");
  ASSERT_EQ(family.size(), 2u);
  EXPECT_EQ(family[0], a_path);
  EXPECT_EQ(family[1], b_path);

  // The fold must converge to the same authoritative state regardless
  // of file order; only the stale-record COUNT is order-dependent (a
  // stale write is only recognizable once a higher token was seen).
  for (const bool a_first : {true, false}) {
    const std::vector<std::string> order =
        a_first ? std::vector<std::string>{a_path, b_path}
                : std::vector<std::string>{b_path, a_path};
    auto merged = FleetJournal::Replay(order);
    ASSERT_TRUE(merged.ok()) << merged.status();
    EXPECT_EQ(merged->files_merged, 2u);
    EXPECT_EQ(merged->malformed_lines, 1u);
    EXPECT_EQ(merged->torn_tail_lines, 1u);
    const CampaignReplay& c = merged->campaigns.at("c");
    EXPECT_EQ(c.state, CampaignState::kDone);
    EXPECT_EQ(c.token, 2u);
    EXPECT_EQ(c.steps_completed, 3u);
    // Step rewards merge ACROSS epochs: A's committed steps 1-2 are
    // kept (deterministic — B resumed from A's checkpoint), B owns
    // step 3.
    ASSERT_EQ(c.step_rewards.size(), 3u);
    EXPECT_DOUBLE_EQ(c.step_rewards.at(1), 1.5);
    EXPECT_DOUBLE_EQ(c.step_rewards.at(2), 2.5);
    EXPECT_DOUBLE_EQ(c.step_rewards.at(3), 3.5);
    EXPECT_DOUBLE_EQ(c.best_reward, 3.5);
    if (a_first) {
      EXPECT_EQ(merged->stale_records, 0u);
    } else {
      // B's epoch-2 records fold first, so A's epoch-1 running +
      // 2 checkpointed records are stale. Its duplicate `pending` is
      // skipped silently — every shared worker journals pending for
      // the whole plan, those are expected, not zombie writes.
      EXPECT_EQ(merged->stale_records, 3u);
    }
  }
  std::filesystem::remove_all(dir);
}

// -- Supervisor -------------------------------------------------------------

TEST(SupervisorTest, CleanCampaignRunsToDoneAndJournalsEverySteps) {
  const std::string dir = TempDir("poisonrec_supervisor_done");
  const data::Dataset log = MakeLog();
  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dir + "/journal.jsonl", true).ok());
  SupervisorOptions options;
  options.checkpoint_dir = dir;
  options.journal = &journal;
  CampaignSupervisor supervisor(FastSpec("clean"), &log, options);
  const CampaignOutcome outcome = supervisor.Run();
  journal.Close();
  EXPECT_EQ(outcome.state, CampaignState::kDone);
  EXPECT_EQ(outcome.steps_completed, 3u);
  EXPECT_EQ(outcome.restarts, 0u);
  EXPECT_EQ(outcome.step_rewards.size(), 3u);
  EXPECT_TRUE(std::filesystem::exists(supervisor.CheckpointPath()));

  auto replay = FleetJournal::ReplayFile(dir + "/journal.jsonl");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->at("clean").state, CampaignState::kDone);
  EXPECT_EQ(replay->at("clean").steps_completed, 3u);
  std::filesystem::remove_all(dir);
}

TEST(SupervisorTest, AbortWithRestartBudgetRestartsThenCompletes) {
  const std::string dir = TempDir("poisonrec_supervisor_restart");
  const data::Dataset log = MakeLog();
  CampaignSpec spec = FastSpec("restarts");
  spec.max_restarts = 2;
  SupervisorOptions options;
  options.checkpoint_dir = dir;
  options.restart_sleep = [](double) {};
  CampaignSupervisor supervisor(spec, &log, options);
  // Abort before Run: the first attempt observes the cancellation at its
  // first step boundary, the supervisor restarts, the second attempt
  // finishes. Deterministic — no timing window.
  supervisor.Abort("injected stall", /*allow_restart=*/true);
  const CampaignOutcome outcome = supervisor.Run();
  EXPECT_EQ(outcome.state, CampaignState::kDone);
  EXPECT_EQ(outcome.restarts, 1u);
  EXPECT_EQ(outcome.steps_completed, 3u);
  std::filesystem::remove_all(dir);
}

TEST(SupervisorTest, AbortWithoutRestartBudgetQuarantines) {
  const std::string dir = TempDir("poisonrec_supervisor_quarantine");
  const data::Dataset log = MakeLog();
  CampaignSpec spec = FastSpec("starved");
  spec.max_restarts = 0;
  SupervisorOptions options;
  options.checkpoint_dir = dir;
  options.restart_sleep = [](double) {};
  CampaignSupervisor supervisor(spec, &log, options);
  supervisor.Abort("stall: no heartbeat", /*allow_restart=*/true);
  const CampaignOutcome outcome = supervisor.Run();
  EXPECT_EQ(outcome.state, CampaignState::kQuarantined);
  EXPECT_NE(outcome.detail.find("restart budget exhausted"),
            std::string::npos)
      << outcome.detail;
  EXPECT_NE(outcome.detail.find("stall"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(SupervisorTest, DeadlineAbortQuarantinesWithoutBurningRestarts) {
  const std::string dir = TempDir("poisonrec_supervisor_deadline");
  const data::Dataset log = MakeLog();
  CampaignSpec spec = FastSpec("overdue");
  spec.max_restarts = 5;  // must NOT be consumed by a deadline abort
  SupervisorOptions options;
  options.checkpoint_dir = dir;
  CampaignSupervisor supervisor(spec, &log, options);
  supervisor.Abort("deadline exceeded", /*allow_restart=*/false);
  const CampaignOutcome outcome = supervisor.Run();
  EXPECT_EQ(outcome.state, CampaignState::kQuarantined);
  EXPECT_EQ(outcome.restarts, 0u);
  EXPECT_NE(outcome.detail.find("deadline"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(SupervisorTest, PoolExhaustionTripsTheCircuitBreaker) {
  const std::string dir = TempDir("poisonrec_supervisor_pool");
  const data::Dataset log = MakeLog();
  CampaignSpec spec = FastSpec("banned");
  // An aggressive defender with a tiny pool: bans outpace replacement,
  // TrainGuarded aborts kResourceExhausted, and the supervisor must
  // quarantine immediately (deterministic replay) instead of restarting.
  spec.defense = true;
  spec.pool_reserve = 1;
  spec.pool_min_live = spec.attackers;
  spec.steps = 12;
  spec.max_restarts = 3;
  spec.defense_profile.detection_interval = 2;
  spec.defense_profile.bans_per_sweep = 3;
  spec.defense_profile.ban_probability = 1.0;
  SupervisorOptions options;
  options.checkpoint_dir = dir;
  options.restart_sleep = [](double) {};
  CampaignSupervisor supervisor(spec, &log, options);
  const CampaignOutcome outcome = supervisor.Run();
  EXPECT_EQ(outcome.state, CampaignState::kQuarantined);
  EXPECT_EQ(outcome.restarts, 0u) << outcome.detail;
  EXPECT_NE(outcome.detail.find("pool exhausted"), std::string::npos)
      << outcome.detail;
  std::filesystem::remove_all(dir);
}

TEST(SupervisorTest, TerminalJournalStateIsRecoveredWithoutRerunning) {
  const std::string dir = TempDir("poisonrec_supervisor_recovered");
  const data::Dataset log = MakeLog();
  SupervisorOptions options;
  options.checkpoint_dir = dir;
  CampaignReplay replay;
  replay.state = CampaignState::kDone;
  replay.steps_completed = 3;
  replay.best_reward = 4.5;
  replay.step_rewards = {{1, 1.0}, {2, 3.0}, {3, 4.5}};
  options.replay = replay;
  CampaignSupervisor supervisor(FastSpec("already-done"), &log, options);
  const CampaignOutcome outcome = supervisor.Run();
  EXPECT_EQ(outcome.state, CampaignState::kDone);
  EXPECT_TRUE(outcome.recovered_from_journal);
  EXPECT_EQ(outcome.steps_completed, 3u);
  EXPECT_DOUBLE_EQ(outcome.best_reward, 4.5);
  // Recovered, so no checkpoint was ever written.
  EXPECT_FALSE(std::filesystem::exists(supervisor.CheckpointPath()));
  std::filesystem::remove_all(dir);
}

// -- Fleet ------------------------------------------------------------------

FleetPlan SmallPlan(std::size_t campaigns, std::size_t steps = 3) {
  FleetPlan plan;
  plan.name = "test-fleet";
  for (std::size_t i = 0; i < campaigns; ++i) {
    CampaignSpec spec = FastSpec("c" + std::to_string(i), 7 + i * 13);
    spec.steps = steps;
    plan.campaigns.push_back(std::move(spec));
  }
  return plan;
}

FleetOptions DirOptions(const std::string& dir) {
  FleetOptions options;
  options.journal_path = dir + "/journal.jsonl";
  options.checkpoint_dir = dir + "/ckpts";
  options.report_json_path = dir + "/report.json";
  options.report_csv_path = dir + "/report.csv";
  options.restart_sleep = [](double) {};
  return options;
}

TEST(FleetTest, ExitCodeMapping) {
  FleetResult result;
  EXPECT_EQ(result.ExitCode(), 0);
  result.quarantined = 1;
  EXPECT_EQ(result.ExitCode(), 2);
  result.quarantined = 0;
  result.interrupted = 2;
  EXPECT_EQ(result.ExitCode(), 2);
  result.status = Status::InvalidArgument("bad plan");
  EXPECT_EQ(result.ExitCode(), 1);
}

TEST(FleetTest, InvalidPlanFailsFastWithExitCodeOne) {
  const std::string dir = TempDir("poisonrec_fleet_badplan");
  const data::Dataset log = MakeLog();
  FleetPlan plan = SmallPlan(2);
  plan.campaigns[1].id = plan.campaigns[0].id;  // duplicate
  FleetOrchestrator orchestrator(plan, &log, DirOptions(dir));
  const FleetResult result = orchestrator.Run();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.ExitCode(), 1);
  EXPECT_TRUE(result.outcomes.empty());
  std::filesystem::remove_all(dir);
}

TEST(FleetTest, ConcurrentFleetCompletesAndWritesReports) {
  const std::string dir = TempDir("poisonrec_fleet_full");
  const data::Dataset log = MakeLog();
  FleetOptions options = DirOptions(dir);
  options.max_concurrent = 3;
  FleetOrchestrator orchestrator(SmallPlan(4), &log, options);
  const FleetResult result = orchestrator.Run();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.ExitCode(), 0);
  EXPECT_EQ(result.done, 4u);
  ASSERT_EQ(result.outcomes.size(), 4u);
  for (const CampaignOutcome& outcome : result.outcomes) {
    EXPECT_EQ(outcome.state, CampaignState::kDone);
    EXPECT_EQ(outcome.steps_completed, 3u);
  }

  // Reports exist and the JSON one parses with our own reader.
  std::ifstream json_in(options.report_json_path);
  ASSERT_TRUE(json_in.good());
  std::string json_text((std::istreambuf_iterator<char>(json_in)),
                        std::istreambuf_iterator<char>());
  auto report = ParseJson(json_text);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->Find("type")->string_value, "fleet_report");
  EXPECT_DOUBLE_EQ(
      report->Find("summary")->Find("done")->number_value, 4.0);
  EXPECT_EQ(report->Find("campaigns")->array.size(), 4u);
  EXPECT_TRUE(std::filesystem::exists(options.report_csv_path));

  // The journal agrees with the in-memory outcomes.
  auto replay = FleetJournal::ReplayFile(options.journal_path);
  ASSERT_TRUE(replay.ok());
  for (const CampaignOutcome& outcome : result.outcomes) {
    EXPECT_EQ(replay->at(outcome.id).state, CampaignState::kDone);
    EXPECT_EQ(replay->at(outcome.id).steps_completed, 3u);
  }
  std::filesystem::remove_all(dir);
}

TEST(FleetTest, PriorityOrdersExecutionUnderSingleWorker) {
  const std::string dir = TempDir("poisonrec_fleet_priority");
  const data::Dataset log = MakeLog();
  FleetPlan plan = SmallPlan(3, /*steps=*/1);
  plan.campaigns[0].priority = 0;
  plan.campaigns[1].priority = 5;
  plan.campaigns[2].priority = 2;
  FleetOptions options = DirOptions(dir);
  options.max_concurrent = 1;
  FleetOrchestrator orchestrator(plan, &log, options);
  ASSERT_EQ(orchestrator.Run().ExitCode(), 0);

  // Order of `running` records in the journal is the execution order.
  std::vector<std::string> started;
  std::ifstream in(options.journal_path);
  std::string line;
  while (std::getline(in, line)) {
    auto record = ParseJson(line);
    ASSERT_TRUE(record.ok());
    if (record->Find("state")->string_value == "running") {
      started.push_back(record->Find("id")->string_value);
    }
  }
  ASSERT_EQ(started.size(), 3u);
  EXPECT_EQ(started[0], "c1");  // priority 5
  EXPECT_EQ(started[1], "c2");  // priority 2
  EXPECT_EQ(started[2], "c0");  // priority 0
  std::filesystem::remove_all(dir);
}

TEST(FleetTest, StallWatchdogQuarantinesAPermanentlyBlackedOutCampaign) {
  const std::string dir = TempDir("poisonrec_fleet_stall");
  const data::Dataset log = MakeLog();
  FleetPlan plan;
  plan.name = "stall";
  CampaignSpec spec = FastSpec("blackout");
  // Every reward query fails on every attempt, and each retry backoff
  // parks in a long (real) sleep with no heartbeat — the exact failure
  // mode the stall watchdog exists for.
  spec.fault.query_failure_rate = 1.0;
  spec.stall_timeout_seconds = 0.05;
  spec.max_restarts = 1;
  spec.retry_attempts = 4;
  plan.campaigns.push_back(spec);
  FleetOptions options = DirOptions(dir);
  options.watchdog_poll_seconds = 0.005;
  options.retry_sleep = [](double) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  };
  FleetOrchestrator orchestrator(plan, &log, options);
  const FleetResult result = orchestrator.Run();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.ExitCode(), 2);
  EXPECT_EQ(result.quarantined, 1u);
  ASSERT_EQ(result.outcomes.size(), 1u);
  const CampaignOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.state, CampaignState::kQuarantined);
  // The stall was retried max_restarts times before the quarantine.
  EXPECT_EQ(outcome.restarts, 1u);
  EXPECT_NE(outcome.detail.find("stall"), std::string::npos)
      << outcome.detail;
  std::filesystem::remove_all(dir);
}

TEST(FleetTest, DeadlineWatchdogQuarantinesAnOverdueCampaign) {
  const std::string dir = TempDir("poisonrec_fleet_deadline");
  const data::Dataset log = MakeLog();
  FleetPlan plan;
  plan.name = "deadline";
  CampaignSpec spec = FastSpec("overdue");
  spec.fault.query_failure_rate = 1.0;  // forced into retry sleeps
  spec.deadline_seconds = 0.03;
  spec.max_restarts = 5;
  plan.campaigns.push_back(spec);
  FleetOptions options = DirOptions(dir);
  options.watchdog_poll_seconds = 0.005;
  options.retry_sleep = [](double) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  };
  FleetOrchestrator orchestrator(plan, &log, options);
  const FleetResult result = orchestrator.Run();
  EXPECT_EQ(result.ExitCode(), 2);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].state, CampaignState::kQuarantined);
  EXPECT_EQ(result.outcomes[0].restarts, 0u);
  EXPECT_NE(result.outcomes[0].detail.find("deadline"), std::string::npos)
      << result.outcomes[0].detail;
  std::filesystem::remove_all(dir);
}

TEST(FleetTest, GracefulShutdownThenResumeIsBitIdentical) {
  const data::Dataset log = MakeLog();

  // Reference: the same plan run to completion with no interruption.
  const std::string ref_dir = TempDir("poisonrec_fleet_ref");
  FleetPlan plan = SmallPlan(3, /*steps=*/6);
  FleetOptions ref_options = DirOptions(ref_dir);
  ref_options.max_concurrent = 1;
  FleetOrchestrator reference(plan, &log, ref_options);
  const FleetResult ref_result = reference.Run();
  ASSERT_EQ(ref_result.ExitCode(), 0);

  // Interrupted run: request shutdown shortly after the fleet starts.
  const std::string dir = TempDir("poisonrec_fleet_resume");
  FleetOptions options = DirOptions(dir);
  options.max_concurrent = 1;
  FleetOrchestrator interrupted(plan, &log, options);
  std::thread stopper([&interrupted] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    interrupted.RequestShutdown();
  });
  const FleetResult first = interrupted.Run();
  stopper.join();
  ASSERT_TRUE(first.status.ok()) << first.status;

  // Resume until the whole fleet is done (one resume normally suffices;
  // the loop keeps the test robust to scheduling).
  FleetResult final_result = first;
  for (int round = 0; round < 5 && final_result.ExitCode() != 0; ++round) {
    FleetOptions resume_options = options;
    resume_options.resume = true;
    FleetOrchestrator resumed(plan, &log, resume_options);
    final_result = resumed.Run();
    ASSERT_TRUE(final_result.status.ok()) << final_result.status;
  }
  ASSERT_EQ(final_result.ExitCode(), 0);
  EXPECT_EQ(final_result.done, 3u);

  // Bit-identical recovery: every campaign's committed per-step rewards
  // (pre-shutdown steps merged from the journal + post-resume steps)
  // match the uninterrupted reference exactly.
  ASSERT_EQ(final_result.outcomes.size(), ref_result.outcomes.size());
  for (std::size_t i = 0; i < final_result.outcomes.size(); ++i) {
    const CampaignOutcome& a = ref_result.outcomes[i];
    const CampaignOutcome& b = final_result.outcomes[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(b.steps_completed, 6u);
    ASSERT_EQ(a.step_rewards.size(), b.step_rewards.size()) << a.id;
    for (const auto& [step, reward] : a.step_rewards) {
      ASSERT_TRUE(b.step_rewards.count(step)) << a.id << " step " << step;
      EXPECT_DOUBLE_EQ(reward, b.step_rewards.at(step))
          << a.id << " step " << step;
    }
    EXPECT_DOUBLE_EQ(a.best_reward, b.best_reward) << a.id;
  }
  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(dir);
}

TEST(FleetTest, SubmittedHighPriorityCampaignPreemptsRunningLowPriority) {
  const std::string dir = TempDir("poisonrec_fleet_preempt");
  const data::Dataset log = MakeLog();
  FleetPlan plan;
  plan.name = "preempt";
  CampaignSpec low = FastSpec("low");
  low.steps = 16;
  low.priority = 0;
  plan.campaigns.push_back(low);
  FleetOptions options = DirOptions(dir);
  options.max_concurrent = 1;
  options.watchdog_poll_seconds = 0.005;
  FleetOrchestrator orchestrator(plan, &log, options);

  // Submit a higher-priority campaign only after `low` has durably
  // committed a step, so the submission provably lands mid-run with
  // every worker busy — the exact preemption trigger.
  Status submitted = Status::InvalidArgument("submitter never ran");
  std::thread submitter([&] {
    for (int i = 0; i < 4000; ++i) {
      auto replay = FleetJournal::ReplayFile(options.journal_path);
      if (replay.ok()) {
        const auto it = replay->find("low");
        if (it != replay->end() && it->second.steps_completed >= 1) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    CampaignSpec high = FastSpec("high", 99);
    high.steps = 2;
    high.priority = 10;
    submitted = orchestrator.Submit(high);
  });
  const FleetResult result = orchestrator.Run();
  submitter.join();
  ASSERT_TRUE(submitted.ok()) << submitted;
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.ExitCode(), 0);
  EXPECT_EQ(result.done, 2u);
  EXPECT_GE(result.preemptions, 1u);

  ASSERT_EQ(result.outcomes.size(), 2u);
  const CampaignOutcome* low_out = nullptr;
  const CampaignOutcome* high_out = nullptr;
  for (const CampaignOutcome& outcome : result.outcomes) {
    if (outcome.id == "low") low_out = &outcome;
    if (outcome.id == "high") high_out = &outcome;
  }
  ASSERT_NE(low_out, nullptr);
  ASSERT_NE(high_out, nullptr);
  EXPECT_EQ(high_out->state, CampaignState::kDone);
  EXPECT_EQ(low_out->state, CampaignState::kDone);
  EXPECT_GE(low_out->preemptions, 1u);
  // The victim still completed every step; its pre-preemption rewards
  // were merged from the journal across the re-queue.
  EXPECT_EQ(low_out->steps_completed, 16u);
  EXPECT_EQ(low_out->step_rewards.size(), 16u);

  // Journal sequence: `low` journals `preempted`, and the very next
  // campaign to start running is `high` — the victim's worker hands
  // itself over within one step boundary.
  std::vector<std::pair<std::string, std::string>> events;  // (id, state)
  std::ifstream in(options.journal_path);
  std::string line;
  while (std::getline(in, line)) {
    auto record = ParseJson(line);
    ASSERT_TRUE(record.ok()) << line;
    events.emplace_back(record->Find("id")->string_value,
                        record->Find("state")->string_value);
  }
  std::size_t preempted_at = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i] == std::make_pair(std::string("low"),
                                    std::string("preempted"))) {
      preempted_at = i;
      break;
    }
  }
  ASSERT_LT(preempted_at, events.size()) << "no preempted record in journal";
  std::string next_running;
  for (std::size_t i = preempted_at + 1; i < events.size(); ++i) {
    if (events[i].second == "running") {
      next_running = events[i].first;
      break;
    }
  }
  EXPECT_EQ(next_running, "high");
  std::filesystem::remove_all(dir);
}

TEST(FleetTest, SubmitDirIngestsCampaignFilesDuringTheRun) {
  const std::string dir = TempDir("poisonrec_fleet_submitdir");
  const std::string inbox = dir + "/inbox";
  std::filesystem::create_directories(inbox);
  {
    std::ofstream out(inbox + "/extra.json");
    out << R"({"id":"extra","steps":2,"samples_per_step":4,"attackers":5,)"
        << R"("trajectory_length":5,"targets":2,"embedding_dim":8,)"
        << R"("eval_users":48,"seed":9})";
  }
  {
    // Rejected with a warning, must not sink the fleet.
    std::ofstream out(inbox + "/broken.json");
    out << "{not a campaign";
  }
  const data::Dataset log = MakeLog();
  const FleetPlan plan = SmallPlan(1, /*steps=*/10);
  FleetOptions options = DirOptions(dir);
  options.max_concurrent = 1;
  options.watchdog_poll_seconds = 0.005;
  options.submit_dir = inbox;
  FleetOrchestrator orchestrator(plan, &log, options);
  const FleetResult result = orchestrator.Run();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.ExitCode(), 0);
  EXPECT_EQ(result.done, 2u);
  bool extra_done = false;
  for (const CampaignOutcome& outcome : result.outcomes) {
    if (outcome.id == "extra") {
      extra_done = outcome.state == CampaignState::kDone;
    }
  }
  EXPECT_TRUE(extra_done) << "submitted campaign was not ingested and run";
  std::filesystem::remove_all(dir);
}

TEST(FleetTest, ShutdownDoesNotWaitOutAnHourLongWatchdogPoll) {
  const std::string dir = TempDir("poisonrec_fleet_watchdog_cv");
  const data::Dataset log = MakeLog();
  FleetOptions options = DirOptions(dir);
  options.max_concurrent = 1;
  // With the old fixed-sleep watchdog loop this poll period would pin
  // Run for an hour after shutdown; the condition-variable wait must
  // return within the campaign's next step boundary instead.
  options.watchdog_poll_seconds = 3600.0;
  FleetOrchestrator orchestrator(SmallPlan(2, /*steps=*/8), &log, options);
  const auto start = std::chrono::steady_clock::now();
  std::thread stopper([&orchestrator] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    orchestrator.RequestShutdown();
  });
  const FleetResult result = orchestrator.Run();
  stopper.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_LT(elapsed, 60.0);
  EXPECT_GE(result.interrupted, 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace poisonrec::orch
