// Attacker account-pool management: the resource model that lets a
// PoisonRec campaign survive an adaptive defender (env::DefendedEnvironment)
// that permanently bans accounts mid-campaign.
//
// The policy controls a fixed number of trajectory *slots* (the paper's
// N concurrent fake users). Each slot is mapped to a live platform
// *account* drawn from a finite reserve: when the defender bans an
// account, the pool retires it and remaps the slot onto the next fresh
// reserve account; when the reserve drains, the slot dies and the
// effective fleet shrinks (graceful degradation — the driver stops
// injecting and stops training on dead slots). The environment's
// attacker id space must cover every account the pool can ever hand out
// (slots + reserve).
#ifndef POISONREC_CORE_ACCOUNT_POOL_H_
#define POISONREC_CORE_ACCOUNT_POOL_H_

#include <cstddef>
#include <vector>

namespace poisonrec::core {

struct AccountPoolConfig {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;
  /// Replacement accounts beyond the initial fleet. The environment must
  /// be built with num_attackers = policy slots + reserve_accounts.
  std::size_t reserve_accounts = 0;
  /// The campaign aborts (kResourceExhausted) when fewer than this many
  /// slots are still mapped to live accounts. 0 = never abort.
  std::size_t min_live_attackers = 2;
};

/// Slot -> account mapping with a finite replacement reserve.
/// Deterministic: replacement always hands out the lowest unused account
/// id, so two runs that ban the same accounts remap identically.
class AccountPool {
 public:
  /// Accounts [0, num_slots) seed the initial fleet; accounts
  /// [num_slots, total_accounts) form the reserve.
  AccountPool(std::size_t num_slots, std::size_t total_accounts);

  std::size_t num_slots() const { return slot_account_.size(); }
  std::size_t total_accounts() const { return total_accounts_; }

  /// Account currently behind `slot`, or kDeadSlot when the slot died.
  static constexpr std::size_t kDeadSlot = static_cast<std::size_t>(-1);
  std::size_t account(std::size_t slot) const;
  bool IsLive(std::size_t slot) const {
    return account(slot) != kDeadSlot;
  }

  /// Retires `account` wherever it is mapped and remaps its slot onto the
  /// next fresh reserve account (or kills the slot when the reserve is
  /// dry). Idempotent: banning an account the pool no longer uses is a
  /// no-op. Returns true if a slot was affected.
  bool OnBanned(std::size_t account);

  /// Slots still mapped to a live account.
  std::size_t live_slots() const;
  /// Fresh accounts still available in the reserve.
  std::size_t reserve_remaining() const {
    return total_accounts_ - next_account_;
  }
  /// Accounts retired (banned) so far.
  std::size_t retired_accounts() const { return retired_; }

  // -- Checkpoint plumbing (core/ppo.cc round-trips this bit-identically).
  const std::vector<std::size_t>& slot_accounts() const {
    return slot_account_;
  }
  std::size_t next_account() const { return next_account_; }
  /// Restores a snapshot; shapes must match the constructed pool.
  void Restore(std::vector<std::size_t> slot_accounts,
               std::size_t next_account, std::size_t retired);

 private:
  std::size_t total_accounts_;
  /// Next never-used account id (everything below is spent).
  std::size_t next_account_;
  std::size_t retired_ = 0;
  std::vector<std::size_t> slot_account_;
};

}  // namespace poisonrec::core

#endif  // POISONREC_CORE_ACCOUNT_POOL_H_
