// Unit tests for orch/lease.h: fencing-token monotonicity across the
// acquire / renew / release / seize lifecycle, driven by the injected
// test clock (no real sleeps).

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "orch/lease.h"
#include "util/status.h"

namespace poisonrec::orch {
namespace {

std::string TempDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(LeaseTest, DefaultWorkerIdIsStableAndPidPrefixed) {
  const std::string id = DefaultWorkerId();
  EXPECT_EQ(id, DefaultWorkerId());  // one nonce per process
  EXPECT_EQ(id[0], 'w');
  EXPECT_NE(id.find('-'), std::string::npos);
}

TEST(LeaseTest, FreshAcquireStartsAtTokenOne) {
  const std::string dir = TempDir("poisonrec_lease_fresh");
  LeaseManager leases(dir, "alpha", /*ttl_seconds=*/5.0);
  ASSERT_TRUE(leases.Init().ok());

  auto lease = leases.Acquire("c0");
  ASSERT_TRUE(lease.ok()) << lease.status();
  EXPECT_EQ(lease->owner, "alpha");
  EXPECT_EQ(lease->token, 1u);

  auto read = leases.Read("c0");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->owner, "alpha");
  EXPECT_EQ(read->token, 1u);
  EXPECT_DOUBLE_EQ(read->ttl_seconds, 5.0);

  // Idempotent re-acquire: still ours, same fencing epoch.
  auto again = leases.Acquire("c0");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->token, 1u);
  std::filesystem::remove_all(dir);
}

TEST(LeaseTest, ReleaseThenReacquireIncrementsToken) {
  const std::string dir = TempDir("poisonrec_lease_release");
  LeaseManager leases(dir, "alpha", 5.0);
  ASSERT_TRUE(leases.Init().ok());
  auto lease = leases.Acquire("c0");
  ASSERT_TRUE(lease.ok());
  ASSERT_TRUE(leases.Release("c0", lease->token).ok());

  auto released = leases.Read("c0");
  ASSERT_TRUE(released.ok());
  EXPECT_TRUE(released->owner.empty());
  EXPECT_EQ(released->token, 1u);  // token survives release

  auto next = leases.Acquire("c0");
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_EQ(next->token, 2u);  // every acquisition is a new epoch
  std::filesystem::remove_all(dir);
}

TEST(LeaseTest, LiveSiblingLeaseIsUnavailable) {
  const std::string dir = TempDir("poisonrec_lease_live");
  LeaseManager alpha(dir, "alpha", 5.0);
  LeaseManager beta(dir, "beta", 5.0);
  ASSERT_TRUE(alpha.Init().ok());
  ASSERT_TRUE(alpha.Acquire("c0").ok());

  auto claim = beta.Acquire("c0");
  ASSERT_FALSE(claim.ok());
  EXPECT_EQ(claim.status().code(), StatusCode::kUnavailable);

  auto read = beta.Read("c0");
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(beta.Seizable(*read));
  EXPECT_TRUE(alpha.Seizable(*read));  // our own lease is always claimable
  std::filesystem::remove_all(dir);
}

TEST(LeaseTest, ExpiredLeaseIsSeizedAndStaleOwnerIsFenced) {
  const std::string dir = TempDir("poisonrec_lease_seize");
  LeaseManager alpha(dir, "alpha", /*ttl_seconds=*/5.0);
  LeaseManager beta(dir, "beta", 5.0);
  ASSERT_TRUE(alpha.Init().ok());
  double now = 100.0;
  alpha.SetClockForTest([&now] { return now; });
  beta.SetClockForTest([&now] { return now; });

  auto held = alpha.Acquire("c0");
  ASSERT_TRUE(held.ok());
  ASSERT_EQ(held->token, 1u);

  // Within ttl the lease is solid: renewable by alpha, opaque to beta.
  now = 103.0;
  ASSERT_TRUE(alpha.Renew("c0", held->token).ok());
  EXPECT_EQ(beta.Acquire("c0").status().code(), StatusCode::kUnavailable);

  // Heartbeats stop (SIGSTOP / crash); past the ttl beta seizes with an
  // incremented fencing token.
  now = 109.0;  // 6s since alpha's renewal at 103 > ttl 5
  auto probe = beta.Read("c0");
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(beta.Seizable(*probe));
  auto seized = beta.Acquire("c0");
  ASSERT_TRUE(seized.ok()) << seized.status();
  EXPECT_EQ(seized->owner, "beta");
  EXPECT_EQ(seized->token, 2u);

  // The zombie's every write path now fails the fencing check.
  EXPECT_EQ(alpha.Renew("c0", 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(alpha.Validate("c0", 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(alpha.Release("c0", 1).code(), StatusCode::kFailedPrecondition);
  // And the new owner's heartbeat works with the new token only.
  ASSERT_TRUE(beta.Renew("c0", 2).ok());
  EXPECT_EQ(beta.Renew("c0", 1).code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(dir);
}

TEST(LeaseTest, ReadDistinguishesMissingFromCorrupt) {
  const std::string dir = TempDir("poisonrec_lease_read");
  LeaseManager leases(dir, "alpha", 5.0);
  ASSERT_TRUE(leases.Init().ok());

  EXPECT_EQ(leases.Read("absent").status().code(), StatusCode::kNotFound);

  {
    std::ofstream out(leases.LeasePath("garbled"));
    out << "this is not a lease";
  }
  EXPECT_EQ(leases.Read("garbled").status().code(), StatusCode::kDataLoss);
  std::filesystem::remove_all(dir);
}

TEST(LeaseTest, ValidSyntaxWithBadChecksumIsDataLoss) {
  const std::string dir = TempDir("poisonrec_lease_badcrc");
  LeaseManager leases(dir, "alpha", 5.0);
  ASSERT_TRUE(leases.Init().ok());
  ASSERT_TRUE(leases.Acquire("c0").ok());

  // Tamper with a checksummed field while keeping the JSON valid and
  // the crc member in place: structural validation alone would accept
  // the file; only the CRC32C line checksum catches the edit.
  const std::string path = leases.LeasePath("c0");
  std::string contents;
  {
    std::ifstream in(path);
    std::getline(in, contents);
  }
  const std::size_t pos = contents.find("\"token\":1");
  ASSERT_NE(pos, std::string::npos) << contents;
  contents.replace(pos, 9, "\"token\":9");
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents << "\n";
  }
  const Status tampered = leases.Read("c0").status();
  EXPECT_EQ(tampered.code(), StatusCode::kDataLoss);
  EXPECT_NE(tampered.message().find("checksum"), std::string::npos)
      << tampered;

  // Legacy lease files written before line checksums (no crc member)
  // still parse: the framing is opt-in on read.
  {
    std::ofstream out(leases.LeasePath("legacy"), std::ios::trunc);
    out << R"({"type":"lease","campaign_id":"legacy","owner":"old",)"
        << R"("pid":1,"token":3,"renewed_unix":1.0,"ttl_seconds":5.0})"
        << "\n";
  }
  auto legacy = leases.Read("legacy");
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(legacy->token, 3u);
  std::filesystem::remove_all(dir);
}

TEST(LeaseTest, ReleasedLeaseIsSeizableByAnySibling) {
  const std::string dir = TempDir("poisonrec_lease_seizable");
  LeaseManager alpha(dir, "alpha", 5.0);
  LeaseManager beta(dir, "beta", 5.0);
  ASSERT_TRUE(alpha.Init().ok());
  auto lease = alpha.Acquire("c0");
  ASSERT_TRUE(lease.ok());
  ASSERT_TRUE(alpha.Release("c0", lease->token).ok());

  auto read = beta.Read("c0");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(beta.Seizable(*read));
  auto claim = beta.Acquire("c0");
  ASSERT_TRUE(claim.ok()) << claim.status();
  EXPECT_EQ(claim->token, 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace poisonrec::orch
