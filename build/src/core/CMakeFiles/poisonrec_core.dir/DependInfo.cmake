
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/action_tree.cc" "src/core/CMakeFiles/poisonrec_core.dir/action_tree.cc.o" "gcc" "src/core/CMakeFiles/poisonrec_core.dir/action_tree.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/poisonrec_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/poisonrec_core.dir/policy.cc.o.d"
  "/root/repo/src/core/ppo.cc" "src/core/CMakeFiles/poisonrec_core.dir/ppo.cc.o" "gcc" "src/core/CMakeFiles/poisonrec_core.dir/ppo.cc.o.d"
  "/root/repo/src/core/trajectory.cc" "src/core/CMakeFiles/poisonrec_core.dir/trajectory.cc.o" "gcc" "src/core/CMakeFiles/poisonrec_core.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/env/CMakeFiles/poisonrec_env.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/poisonrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rec/CMakeFiles/poisonrec_rec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/poisonrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poisonrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
