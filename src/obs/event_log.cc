#include "obs/event_log.h"

namespace poisonrec::obs {

bool EventLog::Open(const std::string& path, bool truncate,
                    FlushPolicy flush) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) return false;
  path_ = path;
  flush_ = flush;
  lines_written_ = 0;
  return true;
}

bool EventLog::Append(std::string_view line) {
  // Build the full record outside the lock; a single fwrite of the
  // complete line (stdio writes are themselves atomic per call against
  // other FILE* users) keeps concurrent appends from interleaving.
  std::string record;
  record.reserve(line.size() + 1);
  record.append(line);
  record.push_back('\n');

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return false;
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return false;
  }
  if (flush_ == FlushPolicy::kEveryLine && std::fflush(file_) != 0) {
    return false;
  }
  ++lines_written_;
  return true;
}

void EventLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool EventLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

std::uint64_t EventLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

}  // namespace poisonrec::obs
