// poisonrec — command-line front-end for the library.
//
//   poisonrec datagen  --dataset=Steam --scale=0.1 --out=log.csv
//   poisonrec quality  --ranker=BPR [--data=log.csv | --dataset=Steam]
//   poisonrec attack   --ranker=GRU4Rec --method=poisonrec --steps=25
//   poisonrec detect   --method=popular
//   poisonrec campaign --steps=50 --fault-failure=0.2 --fault-drop=0.1
//                      --checkpoint=run.ckpt --checkpoint-every=5 [--resume]
//   poisonrec campaign --steps=50 --defense --defense-interval=32
//                      --defense-bans=2 --pool-reserve=20 --pool-min-live=4
//   poisonrec fleet    --plan=fleet.json --journal=results/fleet.jsonl
//                      --checkpoint-dir=results/ckpts [--resume]
//   poisonrec fleet    --status [--status-json=out.json] [--watch=N]
//                      --journal=... --checkpoint-dir=...
//   poisonrec trace-merge wA.trace.json wB.trace.json
//                      --out=results/fleet_trace.json
//   poisonrec fsck     --journal=results/fleet.jsonl
//                      --checkpoint-dir=results/ckpts [--lease-dir=<dir>]
//
// Common flags: --dataset=<Steam|MovieLens|Phone|Clothing> --scale=<f>
//   --data=<csv>  --seed=<n>  --attackers=<N>  --length=<T>
//   --targets=<k> --dim=<e>   --eval-users=<n>
//   --num-threads=<n> worker threads for episode sampling, parallel
//                     reward evaluation (--parallel), and the GEMM
//                     kernels (0 = hardware concurrency). Results are
//                     bit-identical for every thread count.
//
// Campaign fault flags (all rates in [0,1], default 0 = off):
//   --fault-failure  transient query failure rate (kUnavailable)
//   --fault-throttle throttling rate (kResourceExhausted until cool-down)
//   --fault-drop     per-click injection drop rate
//   --fault-ban      per-trajectory shadow-ban rate
//   --fault-noise    Gaussian reward noise stddev
//   --fault-stale    stale (cached) reward rate
//   --fault-nan      NaN reward rate (corrupted feedback channel)
//   --fault-seed     fault stream seed
//   --retry-attempts max attempts per reward query (default 4)
//   --checkpoint=<path> --checkpoint-every=<n> --resume
//
// Campaign adaptive-defender flags (see docs/robustness.md):
//   --defense                run against a DefendedEnvironment: the
//                            platform audits accumulated behavior and
//                            permanently bans top-suspicion fake accounts
//   --defense-interval=<n>   queries between detection sweeps (default 64)
//   --defense-bans=<n>       accounts banned per sweep (default 2)
//   --defense-threshold=<f>  minimum suspicion to ban (default 0)
//   --defense-ban-prob=<f>   per-candidate ban probability (default 1)
//   --defense-detector=<s>   ensemble|cold|entropy|fleet (default ensemble)
//   --defense-seed=<n>       defender decision seed (default 4321)
//   --pool-reserve=<n>       replacement attacker accounts (default 0 =
//                            no pool; banned slots die for good)
//   --pool-min-live=<n>      abort (kResourceExhausted) when fewer slots
//                            survive (default 2; pool campaigns only)
//
// Campaign guardrail flags (see docs/robustness.md):
//   --guard                 enable the training-stability guardrails and
//                           the self-healing rollback driver (requires a
//                           --checkpoint path for the last-good state)
//   --guard-grad-max=<f>    grad-norm explosion threshold (default 100)
//   --guard-entropy-floor=<f> entropy collapse floor (default 1e-5)
//   --guard-kl-max=<f>      approx-KL divergence threshold (default 5)
//   --guard-rollbacks=<n>   consecutive-rollback budget (default 4)
//   --guard-log=<path>      incident JSONL sink (default
//                           <checkpoint>.incidents.jsonl)
//   --max-grad-norm=<f>     gradient clip (default 5; 0 disables)
//
// Fleet flags (see docs/robustness.md "Fleet orchestration"):
//   --plan=<json>           fleet plan file (required; schema in
//                           src/orch/spec.h)
//   --journal=<path>        crash-durable JSONL journal (default
//                           results/fleet_journal.jsonl)
//   --checkpoint-dir=<dir>  per-campaign checkpoints (default
//                           results/fleet_checkpoints)
//   --report-json=<path>    consolidated report (default
//                           results/fleet_report.json; empty disables)
//   --report-csv=<path>     CSV report (default results/fleet_report.csv)
//   --resume                replay the journal; re-schedule only
//                           unfinished campaigns from their checkpoints
//   --max-concurrent=<n>    campaigns running at once (default 2)
//   --data=<csv>            use a real log instead of the plan's
//                           synthetic dataset
//   --telemetry-dir=<dir>   worker status snapshot directory (default
//                           <checkpoint-dir>/telemetry)
//   --status-every=<sec>    snapshot publication cadence (default 0.25)
//   --publish-status=false  disable snapshot publication
//   SIGINT/SIGTERM checkpoint every running campaign at the next step
//   boundary and exit. Exit codes: 0 all campaigns done, 2 partial fleet
//   (quarantined/failed/interrupted campaigns — resumable with --resume),
//   1 fatal orchestrator error (bad plan, journal/report I/O).
//
// Fleet status flags (read-only; see docs/observability.md "Fleet
// status" — works mid-run from any process):
//   --status                aggregate journal + leases + worker status
//                           snapshots into a cluster table; exit 0
//                           healthy, 2 degraded (stale workers,
//                           quarantined/failed/stalled campaigns)
//   --status-json=<path>    also write the machine-readable fleet_status
//                           JSON (validated by
//                           tools/validate_telemetry.py --fleet-status)
//   --watch=<sec>           re-render every <sec> seconds until ^C
//   --stale-after=<sec>     heartbeat age that marks a live-pid worker
//                           stale (default: 3x its publish period)
//   --journal/--checkpoint-dir/--telemetry-dir/--lease-dir as above
//
// trace-merge: fuse per-worker Chrome traces (`fleet --trace-out` from
// each worker) into one timeline; each input file becomes its own
// process lane (pid = input index, process_name = file stem) and span
// args (campaign ids) are preserved. Timestamps stay relative to each
// file's own export epoch. Flags: --out=<path> (default
// results/fleet_trace.json).
//
// Fsck flags (offline storage-integrity audit, docs/robustness.md):
//   --journal=<path>        journal family base path (default
//                           results/fleet_journal.jsonl)
//   --checkpoint-dir=<dir>  checkpoint directory to audit (default
//                           results/fleet_checkpoints)
//   --lease-dir=<dir>       lease directory (default
//                           <checkpoint-dir>/leases)
//   Exit codes: 0 everything intact, 2 damage found but all of it
//   repairable (torn journal tails, damaged checkpoints with an intact
//   sibling, corrupt leases), 1 unrepairable damage (interior journal
//   corruption, a campaign whose every checkpoint is damaged).
//
// Campaign telemetry flags (see docs/observability.md):
//   --metrics-out=<path>    write a metrics-registry JSON snapshot at the
//                           end of the run
//   --trace-out=<path>      enable trace spans and write Chrome
//                           trace_event JSON at the end of the run (open
//                           in chrome://tracing or ui.perfetto.dev)
//   --events-out=<path>     stream the unified JSONL event log (step,
//                           guard, ban, rollback, checkpoint events)
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "attack/appgrad.h"
#include "attack/conslop.h"
#include "attack/heuristics.h"
#include "attack/poisonrec_attack.h"
#include "core/account_pool.h"
#include "core/poisonrec.h"
#include "core/ppo.h"
#include "defense/detector.h"
#include "env/defended.h"
#include "env/fault.h"
#include "nn/kernels.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orch/fleet.h"
#include "orch/fsck.h"
#include "orch/json_reader.h"
#include "orch/spec.h"
#include "orch/status.h"
#include "rec/metrics.h"
#include "util/fsio.h"

namespace poisonrec::cli {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<std::size_t>(
                     std::strtoull(it->second.c_str(), nullptr, 10));
  }

 private:
  std::map<std::string, std::string> values_;
};

data::Dataset LoadOrGenerate(const Flags& flags) {
  const std::string path = flags.Get("data", "");
  if (!path.empty()) {
    auto loaded = data::LoadDatasetCsv(path);
    POISONREC_CHECK(loaded.ok()) << loaded.status();
    return std::move(loaded).value();
  }
  auto preset = data::ParseDatasetPreset(flags.Get("dataset", "Steam"));
  POISONREC_CHECK(preset.ok()) << preset.status();
  return data::GenerateSynthetic(data::PresetConfig(
      *preset, flags.GetDouble("scale", 0.1), flags.GetSize("seed", 1)));
}

std::unique_ptr<env::AttackEnvironment> BuildEnvironment(
    const Flags& flags, data::Dataset log, std::size_t extra_accounts = 0) {
  rec::FitConfig fit;
  fit.embedding_dim = flags.GetSize("dim", 16);
  fit.seed = flags.GetSize("seed", 1) ^ 0x5u;
  env::EnvironmentConfig config;
  config.num_attackers = flags.GetSize("attackers", 20) + extra_accounts;
  config.trajectory_length = flags.GetSize("length", 20);
  config.num_target_items = flags.GetSize("targets", 8);
  config.max_eval_users = flags.GetSize("eval-users", 200);
  config.seed = flags.GetSize("seed", 1) ^ 0x7u;
  auto ranker = rec::MakeRecommender(flags.Get("ranker", "ItemPop"), fit);
  POISONREC_CHECK(ranker.ok()) << ranker.status();
  return std::make_unique<env::AttackEnvironment>(
      log, std::move(ranker).value(), config);
}

std::unique_ptr<attack::AttackMethod> BuildMethod(const Flags& flags) {
  const std::string name = flags.Get("method", "poisonrec");
  if (name == "random") return std::make_unique<attack::RandomAttack>();
  if (name == "popular") return std::make_unique<attack::PopularAttack>();
  if (name == "middle") return std::make_unique<attack::MiddleAttack>();
  if (name == "poweritem") {
    return std::make_unique<attack::PowerItemAttack>();
  }
  if (name == "conslop") return std::make_unique<attack::ConsLopAttack>();
  if (name == "appgrad") {
    attack::AppGradConfig config;
    config.iterations = flags.GetSize("steps", 25);
    return std::make_unique<attack::AppGradAttack>(config);
  }
  POISONREC_CHECK(name == "poisonrec") << "unknown method '" << name << "'";
  core::PoisonRecConfig config;
  config.samples_per_step = flags.GetSize("samples", 8);
  config.batch_size = config.samples_per_step;
  config.policy.embedding_dim = flags.GetSize("dim", 16);
  config.parallel_rewards = flags.Get("parallel", "false") == "true";
  config.num_threads = flags.GetSize("num-threads", 0);
  return std::make_unique<attack::PoisonRecAttack>(
      config, flags.GetSize("steps", 25));
}

int CmdDatagen(const Flags& flags) {
  data::Dataset log = LoadOrGenerate(flags);
  const std::string out = flags.Get("out", "log.csv");
  POISONREC_CHECK_OK(data::SaveDatasetCsv(log, out));
  std::printf("wrote %s (%zu users, %zu items, %zu events)\n", out.c_str(),
              log.num_users(), log.num_items(), log.num_interactions());
  return 0;
}

int CmdQuality(const Flags& flags) {
  data::Dataset full = LoadOrGenerate(flags);
  data::LeaveOneOutSplit split = data::SplitLeaveOneOut(full);
  rec::FitConfig fit;
  fit.embedding_dim = flags.GetSize("dim", 16);
  fit.epochs = flags.GetSize("epochs", 6);
  auto ranker = rec::MakeRecommender(flags.Get("ranker", "ItemPop"), fit);
  POISONREC_CHECK(ranker.ok()) << ranker.status();
  (*ranker)->Fit(split.train);
  rec::RankingQuality q =
      rec::EvaluateRanking(**ranker, full, split.test);
  std::printf("%s: HR@10 %.4f  NDCG@10 %.4f  (random floor %.4f, %zu "
              "held-out events)\n",
              (*ranker)->Name().c_str(), q.hit_rate, q.ndcg,
              rec::RandomHitRate(rec::EvalProtocol()), q.num_evaluated);
  return 0;
}

int CmdAttack(const Flags& flags) {
  auto environment = BuildEnvironment(flags, LoadOrGenerate(flags));
  std::printf("system: %s, baseline RecNum %.0f\n",
              environment->pretrained_ranker().Name().c_str(),
              environment->BaselineRecNum());
  auto method = BuildMethod(flags);
  const auto trajectories =
      method->GenerateAttack(*environment, flags.GetSize("seed", 1));
  std::printf("%s attack RecNum: %.0f\n", method->Name().c_str(),
              environment->Evaluate(trajectories));
  return 0;
}

int CmdDetect(const Flags& flags) {
  auto environment = BuildEnvironment(flags, LoadOrGenerate(flags));
  auto method = BuildMethod(flags);
  const auto trajectories =
      method->GenerateAttack(*environment, flags.GetSize("seed", 1));
  data::Dataset poisoned = environment->dataset().Clone();
  std::vector<data::UserId> fakes;
  for (const auto& t : trajectories) {
    const data::UserId u = environment->AttackerUserId(t.attacker_index);
    poisoned.AddSequence(u, t.items);
    fakes.push_back(u);
  }
  auto ensemble = defense::MakeDefaultEnsemble();
  std::printf("%s attack vs %s detector: AUC %.3f (RecNum %.0f)\n",
              method->Name().c_str(), ensemble->Name().c_str(),
              defense::DetectionAuc(ensemble->Score(poisoned), fakes),
              environment->Evaluate(trajectories));
  return 0;
}

std::unique_ptr<defense::Detector> BuildDetector(const std::string& name) {
  if (name == "cold") return std::make_unique<defense::ColdItemAffinityDetector>();
  if (name == "entropy") return std::make_unique<defense::ClickEntropyDetector>();
  if (name == "fleet") return std::make_unique<defense::FleetSimilarityDetector>();
  POISONREC_CHECK(name == "ensemble") << "unknown detector '" << name << "'";
  return defense::MakeDefaultEnsemble();
}

/// End-of-campaign telemetry fan-out: summary table on stdout plus the
/// optional snapshot files. Called on every CmdCampaign exit path so an
/// aborted campaign still leaves its telemetry behind (that is exactly
/// when the post-mortem needs it).
void FinalizeTelemetry(const std::string& metrics_out,
                       const std::string& trace_out,
                       const std::string& events_out,
                       obs::EventLog* event_log) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static const char* const kSummaryCounters[] = {
      "poisonrec_ppo_steps_total",
      "poisonrec_ppo_retries_total",
      "poisonrec_ppo_failed_queries_total",
      "poisonrec_ppo_imputed_rewards_total",
      "poisonrec_ppo_rollbacks_total",
      "poisonrec_guard_trips_total",
      "poisonrec_defense_sweeps_total",
      "poisonrec_defense_bans_total",
      "poisonrec_fault_transient_failures_total",
      "poisonrec_fault_throttled_total",
      "poisonrec_gemm_nn_calls_total",
      "poisonrec_gemm_tn_calls_total",
      "poisonrec_gemm_nt_calls_total",
      "poisonrec_gemm_flops_total",
  };
  std::printf("telemetry summary\n");
  std::printf("  %-44s %16s\n", "metric", "value");
  for (const char* name : kSummaryCounters) {
    std::printf("  %-44s %16llu\n", name,
                static_cast<unsigned long long>(
                    reg.GetCounter(name)->Value()));
  }
  if (!metrics_out.empty()) {
    if (reg.WriteJson(metrics_out)) {
      std::printf("  metrics snapshot -> %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics snapshot %s\n",
                   metrics_out.c_str());
    }
  }
  if (!trace_out.empty()) {
    if (obs::WriteChromeTrace(trace_out)) {
      std::printf("  chrome trace (%zu spans, %zu dropped) -> %s\n",
                  obs::TraceEventCount(), obs::TraceDroppedCount(),
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace %s\n", trace_out.c_str());
    }
  }
  if (event_log != nullptr && event_log->is_open()) {
    std::printf("  event stream (%llu lines) -> %s\n",
                static_cast<unsigned long long>(event_log->lines_written()),
                events_out.c_str());
    event_log->Close();
  }
}

int CmdCampaign(const Flags& flags) {
  const bool defended = flags.Get("defense", "false") == "true";
  const std::string metrics_out = flags.Get("metrics-out", "");
  const std::string trace_out = flags.Get("trace-out", "");
  const std::string events_out = flags.Get("events-out", "");
  if (!trace_out.empty()) obs::SetTracingEnabled(true);
  obs::EventLog event_log;
  if (!events_out.empty()) {
    POISONREC_CHECK(event_log.Open(events_out))
        << "cannot open --events-out=" << events_out;
  }
  const std::size_t pool_reserve = flags.GetSize("pool-reserve", 0);
  auto environment = BuildEnvironment(flags, LoadOrGenerate(flags),
                                      defended ? pool_reserve : 0);
  std::printf("system: %s, baseline RecNum %.0f\n",
              environment->pretrained_ranker().Name().c_str(),
              environment->BaselineRecNum());

  env::FaultProfile profile;
  profile.query_failure_rate = flags.GetDouble("fault-failure", 0.0);
  profile.throttle_rate = flags.GetDouble("fault-throttle", 0.0);
  profile.injection_drop_rate = flags.GetDouble("fault-drop", 0.0);
  profile.shadow_ban_rate = flags.GetDouble("fault-ban", 0.0);
  profile.reward_noise_stddev = flags.GetDouble("fault-noise", 0.0);
  profile.stale_reward_rate = flags.GetDouble("fault-stale", 0.0);
  profile.nan_reward_rate = flags.GetDouble("fault-nan", 0.0);
  profile.seed = flags.GetSize("fault-seed", 1234);
  env::FaultyEnvironment faulty(environment.get(), profile);

  std::unique_ptr<env::DefendedEnvironment> platform;
  if (defended) {
    env::DefenseProfile defense;
    defense.detection_interval = flags.GetSize("defense-interval", 64);
    defense.bans_per_sweep = flags.GetSize("defense-bans", 2);
    defense.suspicion_threshold = flags.GetDouble("defense-threshold", 0.0);
    defense.ban_probability = flags.GetDouble("defense-ban-prob", 1.0);
    defense.seed = flags.GetSize("defense-seed", 4321);
    platform = std::make_unique<env::DefendedEnvironment>(
        &faulty, BuildDetector(flags.Get("defense-detector", "ensemble")),
        defense);
    std::printf("defender: %s detector, sweep every %zu queries, "
                "%zu bans/sweep; attacker pool reserve %zu\n",
                flags.Get("defense-detector", "ensemble").c_str(),
                defense.detection_interval, defense.bans_per_sweep,
                pool_reserve);
  }

  const std::string checkpoint = flags.Get("checkpoint", "");
  const bool guarded = flags.Get("guard", "false") == "true";

  core::PoisonRecConfig config;
  config.samples_per_step = flags.GetSize("samples", 8);
  config.batch_size = config.samples_per_step;
  config.policy.embedding_dim = flags.GetSize("dim", 16);
  config.parallel_rewards = flags.Get("parallel", "false") == "true";
  config.num_threads = flags.GetSize("num-threads", 0);
  config.seed = flags.GetSize("seed", 1);
  config.retry.max_attempts = flags.GetSize("retry-attempts", 4);
  config.max_grad_norm =
      static_cast<float>(flags.GetDouble("max-grad-norm", 5.0));
  if (defended && pool_reserve > 0) {
    config.pool.enabled = true;
    config.pool.reserve_accounts = pool_reserve;
    config.pool.min_live_attackers = flags.GetSize("pool-min-live", 2);
  }
  if (guarded) {
    config.guard.enabled = true;
    config.guard.grad_norm_threshold = flags.GetDouble("guard-grad-max", 100.0);
    config.guard.entropy_floor = flags.GetDouble("guard-entropy-floor", 1e-5);
    config.guard.approx_kl_threshold = flags.GetDouble("guard-kl-max", 5.0);
    config.guard.max_rollbacks = flags.GetSize("guard-rollbacks", 4);
    config.guard.incident_log_path = flags.Get(
        "guard-log",
        checkpoint.empty() ? "guard.incidents.jsonl"
                           : checkpoint + ".incidents.jsonl");
  }

  core::PoisonRecAttacker attacker(environment.get(), config);
  if (platform != nullptr) {
    attacker.AttachDefendedEnvironment(platform.get());
  } else {
    attacker.AttachFaultyEnvironment(&faulty);
  }
  if (event_log.is_open()) {
    attacker.SetEventLog(&event_log);
    obs::JsonObjectBuilder b;
    b.Str("type", "campaign_begin")
        .Int("steps", flags.GetSize("steps", 25))
        .Int("samples_per_step", config.samples_per_step)
        .Int("seed", config.seed)
        .Bool("defense", defended)
        .Bool("guard", guarded);
    event_log.Append(std::move(b).Finish());
  }

  const std::size_t checkpoint_every = flags.GetSize("checkpoint-every", 5);
  if (flags.Get("resume", "false") == "true") {
    POISONREC_CHECK(!checkpoint.empty())
        << "--resume requires --checkpoint=<path>";
    if (std::filesystem::exists(checkpoint)) {
      POISONREC_CHECK_OK(attacker.LoadCheckpoint(checkpoint));
      std::printf("resumed from %s at step %zu\n", checkpoint.c_str(),
                  attacker.steps_taken());
    } else {
      std::printf("no checkpoint at %s yet; starting fresh\n",
                  checkpoint.c_str());
    }
  }

  const auto finalize = [&](const char* outcome) {
    if (event_log.is_open()) {
      obs::JsonObjectBuilder b;
      b.Str("type", "campaign_end")
          .Str("outcome", outcome)
          .Num("best_reward", attacker.best_episode().reward)
          .Int("steps_taken", attacker.steps_taken());
      event_log.Append(std::move(b).Finish());
    }
    FinalizeTelemetry(metrics_out, trace_out, events_out, &event_log);
  };

  const std::size_t total_steps = flags.GetSize("steps", 25);
  if (guarded) {
    POISONREC_CHECK(!checkpoint.empty())
        << "--guard requires --checkpoint=<path> for the last-good state";
    const core::GuardedTrainResult result =
        attacker.TrainGuarded(total_steps, checkpoint);
    for (const core::TrainStepStats& stats : result.stats) {
      std::printf("step %3zu  mean %7.1f  best %7.1f  loss %8.4f  "
                  "grad %7.3f  ent %6.3f  kl %8.5f  "
                  "sec %5.2f (smp %4.2f qry %4.2f upd %4.2f oth %4.2f)  %s",
                  stats.step, stats.mean_reward, stats.best_reward_so_far,
                  stats.loss, stats.pre_clip_grad_norm, stats.entropy,
                  stats.approx_kl, stats.seconds, stats.sample_seconds,
                  stats.query_seconds, stats.update_seconds,
                  stats.other_seconds,
                  stats.guard.tripped() ? stats.guard.Summary().c_str()
                                        : "clean");
      if (defended) {
        std::printf("  banned %zu  live %zu  pool %zu",
                    stats.banned_accounts, stats.effective_attackers,
                    stats.pool_remaining);
      }
      std::printf("\n");
    }
    std::printf("guardrails: %zu rollbacks, %zu incidents (%s)\n",
                result.rollbacks, result.incidents,
                config.guard.incident_log_path.c_str());
    if (!result.status.ok()) {
      std::fprintf(stderr, "campaign aborted: %s\n",
                   result.status.ToString().c_str());
      finalize("aborted");
      return 1;
    }
  } else {
    while (attacker.steps_taken() < total_steps &&
           attacker.campaign_status().ok()) {
      const core::TrainStepStats stats = attacker.TrainStep();
      std::printf("step %3zu  mean %7.1f  best %7.1f  loss %8.4f  "
                  "sec %5.2f (smp %4.2f qry %4.2f upd %4.2f oth %4.2f)  "
                  "failed %zu  retries %zu  imputed %zu",
                  stats.step, stats.mean_reward, stats.best_reward_so_far,
                  stats.loss, stats.seconds, stats.sample_seconds,
                  stats.query_seconds, stats.update_seconds,
                  stats.other_seconds, stats.failed_queries, stats.retries,
                  stats.imputed_rewards);
      if (defended) {
        std::printf("  banned %zu  live %zu  pool %zu",
                    stats.banned_accounts, stats.effective_attackers,
                    stats.pool_remaining);
      }
      std::printf("\n");
      if (!checkpoint.empty() &&
          (attacker.steps_taken() % checkpoint_every == 0 ||
           attacker.steps_taken() == total_steps ||
           !attacker.campaign_status().ok())) {
        POISONREC_CHECK_OK(attacker.SaveCheckpoint(checkpoint));
      }
    }
  }

  const env::FaultStats fault_stats = faulty.stats();
  std::printf("campaign done: best RecNum %.0f over %zu steps\n",
              attacker.best_episode().reward, attacker.steps_taken());
  std::printf("faults: %zu attempts, %zu transient failures, %zu throttled, "
              "%zu dropped clicks, %zu banned trajectories, %zu stale, "
              "%zu nan rewards\n",
              fault_stats.attempts, fault_stats.transient_failures,
              fault_stats.throttled, fault_stats.dropped_clicks,
              fault_stats.banned_trajectories, fault_stats.stale_rewards,
              fault_stats.nan_rewards);
  if (platform != nullptr) {
    const env::DefenseStats d = platform->stats();
    std::printf("defender: %zu queries audited, %zu sweeps, %zu bans, "
                "%zu filtered trajectories, %zu clicks on record\n",
                d.queries, d.sweeps, d.bans, d.filtered_trajectories,
                d.recorded_clicks);
    for (const env::BanEvent& ban : platform->ban_events()) {
      std::printf("  ban @query %zu: account %zu (user %zu), "
                  "suspicion %.4f\n",
                  static_cast<std::size_t>(ban.query_id), ban.attacker_index,
                  static_cast<std::size_t>(ban.user_id), ban.suspicion);
    }
    if (const core::AccountPool* pool = attacker.account_pool()) {
      std::printf("pool: %zu live slots, %zu reserve remaining, "
                  "%zu accounts retired\n",
                  pool->live_slots(), pool->reserve_remaining(),
                  pool->retired_accounts());
    }
    if (!attacker.campaign_status().ok()) {
      std::fprintf(stderr,
                   "campaign aborted: %s\n"
                   "post-mortem: the defender banned attacker accounts "
                   "faster than the pool could replace them; raise "
                   "--pool-reserve, lower the fleet's footprint "
                   "(shorter/more diverse trajectories), or accept a "
                   "smaller fleet via --pool-min-live\n",
                   attacker.campaign_status().ToString().c_str());
      finalize("aborted");
      return 1;
    }
  }
  finalize("ok");
  return 0;
}

// SIGINT/SIGTERM must only touch async-signal-safe state: a lock-free
// atomic pointer load plus RequestShutdownFromSignal (a single atomic
// store — no condition-variable notify, which is not signal-safe). The
// orchestrator notices within one watchdog poll, checkpoints every
// running campaign, journals, and returns.
std::atomic<orch::FleetOrchestrator*> g_fleet{nullptr};

void HandleFleetSignal(int /*signum*/) {
  orch::FleetOrchestrator* fleet = g_fleet.load(std::memory_order_acquire);
  if (fleet != nullptr) fleet->RequestShutdownFromSignal();
}

/// `fleet --status`: read-only aggregation of the journal family, live
/// leases, and worker status snapshots — no plan or dataset needed, so
/// it works mid-run from a different process than the workers.
int CmdFleetStatus(const Flags& flags) {
  orch::FleetStatusOptions options;
  options.journal_path =
      flags.Get("journal", "results/fleet_journal.jsonl");
  options.checkpoint_dir =
      flags.Get("checkpoint-dir", "results/fleet_checkpoints");
  options.telemetry_dir = flags.Get("telemetry-dir", "");
  options.lease_dir = flags.Get("lease-dir", "");
  options.stale_after_seconds = flags.GetDouble("stale-after", 0.0);
  const std::string status_json = flags.Get("status-json", "");
  const double watch_seconds = flags.GetDouble("watch", 0.0);
  for (;;) {
    const orch::FleetStatus status = orch::CollectFleetStatus(options);
    std::fputs(orch::FormatFleetStatusTable(status).c_str(), stdout);
    std::fflush(stdout);
    if (!status_json.empty()) {
      const Status wrote = WriteFileDurable(
          status_json, orch::FleetStatusJson(status) + "\n");
      if (!wrote.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", status_json.c_str(),
                     wrote.ToString().c_str());
        return 1;
      }
    }
    if (watch_seconds <= 0.0) return status.ExitCode();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(watch_seconds));
    std::printf("\n");
  }
}

/// Serializes a parsed JsonValue back to text (trace-merge re-emits
/// each span with a rewritten pid).
void SerializeJsonValue(const orch::JsonValue& value, std::string* out) {
  using Kind = orch::JsonValue::Kind;
  switch (value.kind) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += value.bool_value ? "true" : "false";
      break;
    case Kind::kNumber:
      obs::AppendJsonNumber(out, value.number_value);
      break;
    case Kind::kString:
      obs::AppendJsonString(out, value.string_value);
      break;
    case Kind::kArray: {
      *out += "[";
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) *out += ",";
        SerializeJsonValue(value.array[i], out);
      }
      *out += "]";
      break;
    }
    case Kind::kObject: {
      *out += "{";
      bool first = true;
      for (const auto& [key, member] : value.members) {
        if (!first) *out += ",";
        first = false;
        obs::AppendJsonString(out, key);
        *out += ":";
        SerializeJsonValue(member, out);
      }
      *out += "}";
      break;
    }
  }
}

/// `trace-merge`: fuses per-worker Chrome trace files into one timeline
/// with a process lane per input (pid = input index + 1, named after
/// the file), preserving tids and span args. Timestamps stay relative
/// to each file's own export epoch.
int CmdTraceMerge(int argc, char** argv, const Flags& flags) {
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) continue;
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: poisonrec trace-merge <trace.json> [more ...] "
                 "[--out=results/fleet_trace.json]\n");
    return 2;
  }
  const std::string out_path =
      flags.Get("out", "results/fleet_trace.json");
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::size_t merged_spans = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    StatusOr<orch::JsonValue> parsed = orch::ParseJsonFile(inputs[i]);
    if (!parsed.ok() || !parsed->is_object()) {
      std::fprintf(stderr, "cannot parse trace %s%s%s\n", inputs[i].c_str(),
                   parsed.ok() ? "" : ": ",
                   parsed.ok() ? "" : parsed.status().ToString().c_str());
      return 1;
    }
    const std::uint64_t pid = i + 1;
    // A metadata event names the lane after the input file, so Perfetto
    // shows one titled process row per worker.
    std::string label = std::filesystem::path(inputs[i]).stem().string();
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":";
    obs::AppendJsonString(&out, label);
    out += "}}";
    const orch::JsonValue* events = parsed->Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "%s has no traceEvents array\n",
                   inputs[i].c_str());
      return 1;
    }
    for (const orch::JsonValue& event : events->array) {
      if (!event.is_object()) continue;
      out += ",{";
      bool first_member = true;
      for (const auto& [key, member] : event.members) {
        if (key == "pid") continue;
        if (!first_member) out += ",";
        first_member = false;
        obs::AppendJsonString(&out, key);
        out += ":";
        SerializeJsonValue(member, &out);
      }
      if (!first_member) out += ",";
      out += "\"pid\":" + std::to_string(pid) + "}";
      ++merged_spans;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  const Status wrote = WriteFileDurable(out_path, out);
  if (!wrote.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 wrote.ToString().c_str());
    return 1;
  }
  std::printf("merged %zu span(s) from %zu trace(s) -> %s\n", merged_spans,
              inputs.size(), out_path.c_str());
  return 0;
}

int CmdFleet(const Flags& flags) {
  if (flags.Get("status", "false") == "true") return CmdFleetStatus(flags);
  const std::string plan_path = flags.Get("plan", "");
  if (plan_path.empty()) {
    std::fprintf(stderr, "fleet requires --plan=<json>\n");
    return 2;
  }
  StatusOr<orch::FleetPlan> plan = orch::LoadFleetPlan(plan_path);
  if (!plan.ok()) {
    std::fprintf(stderr, "cannot load fleet plan %s: %s\n",
                 plan_path.c_str(), plan.status().ToString().c_str());
    return 1;
  }

  const std::string metrics_out = flags.Get("metrics-out", "");
  const std::string trace_out = flags.Get("trace-out", "");
  if (!trace_out.empty()) obs::SetTracingEnabled(true);

  // The whole fleet shares one clean interaction log; per-campaign
  // variation comes from the spec (ranker, faults, defense, seeds).
  const std::string data_path = flags.Get("data", "");
  data::Dataset log = [&]() -> data::Dataset {
    if (!data_path.empty()) {
      auto loaded = data::LoadDatasetCsv(data_path);
      POISONREC_CHECK(loaded.ok()) << loaded.status();
      return std::move(loaded).value();
    }
    auto preset = data::ParseDatasetPreset(plan->dataset);
    POISONREC_CHECK(preset.ok()) << preset.status();
    return data::GenerateSynthetic(
        data::PresetConfig(*preset, plan->scale, plan->dataset_seed));
  }();

  orch::FleetOptions options;
  options.journal_path =
      flags.Get("journal", "results/fleet_journal.jsonl");
  options.checkpoint_dir =
      flags.Get("checkpoint-dir", "results/fleet_checkpoints");
  options.report_json_path =
      flags.Get("report-json", "results/fleet_report.json");
  options.report_csv_path =
      flags.Get("report-csv", "results/fleet_report.csv");
  options.resume = flags.Get("resume", "false") == "true";
  options.max_concurrent = flags.GetSize("max-concurrent", 2);
  // Cross-process shared fleet: N `poisonrec fleet --shared` processes
  // with the same plan/journal/checkpoint paths claim campaigns through
  // leases (orch/lease.h) and merge their journals at report time.
  options.shared = flags.Get("shared", "false") == "true";
  options.worker_id = flags.Get("worker-id", "");
  if (const std::string ttl = flags.Get("lease-ttl", ""); !ttl.empty()) {
    options.lease_ttl_seconds = std::atof(ttl.c_str());
  }
  options.submit_dir = flags.Get("submit-dir", "");
  options.publish_status = flags.Get("publish-status", "true") != "false";
  options.telemetry_dir = flags.Get("telemetry-dir", "");
  options.status_publish_seconds = flags.GetDouble("status-every", 0.25);

  std::printf("fleet %s: %zu campaign(s), dataset %s (%zu users, %zu "
              "items), %zu worker(s)%s%s%s%s\n",
              plan->name.c_str(), plan->campaigns.size(),
              plan->dataset.c_str(), log.num_users(), log.num_items(),
              options.max_concurrent, options.resume ? ", resuming" : "",
              options.shared ? ", shared as " : "",
              options.shared
                  ? (options.worker_id.empty() ? "<auto>"
                                               : options.worker_id.c_str())
                  : "",
              options.submit_dir.empty() ? "" : ", watching submissions");

  orch::FleetOrchestrator orchestrator(std::move(plan).value(), &log,
                                       options);
  g_fleet.store(&orchestrator, std::memory_order_release);
  std::signal(SIGINT, HandleFleetSignal);
  std::signal(SIGTERM, HandleFleetSignal);
  const orch::FleetResult result = orchestrator.Run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_fleet.store(nullptr, std::memory_order_release);

  for (const orch::CampaignOutcome& outcome : result.outcomes) {
    std::printf("  %-32s %-12s steps %3llu  best %7.1f  restarts %llu  "
                "rollbacks %llu  %5.1fs%s%s%s%s\n",
                outcome.id.c_str(),
                orch::CampaignStateName(outcome.state),
                static_cast<unsigned long long>(outcome.steps_completed),
                outcome.best_reward,
                static_cast<unsigned long long>(outcome.restarts),
                static_cast<unsigned long long>(outcome.rollbacks),
                outcome.wall_seconds,
                outcome.recovered_from_journal ? "  [recovered]" : "",
                outcome.interrupted ? "  [interrupted]" : "",
                outcome.detail.empty() ? "" : "  ",
                outcome.detail.c_str());
  }
  std::printf("fleet %s: %zu done, %zu quarantined, %zu failed, "
              "%zu interrupted, %zu recovered, %zu preemption(s), "
              "%zu fenced in %.1fs\n",
              result.plan_name.c_str(), result.done, result.quarantined,
              result.failed, result.interrupted, result.recovered,
              result.preemptions, result.fenced, result.wall_seconds);
  if (!options.report_json_path.empty() && result.status.ok()) {
    std::printf("  report -> %s\n", options.report_json_path.c_str());
  }
  if (orchestrator.shutdown_requested()) {
    std::printf("shutdown requested: unfinished campaigns are "
                "checkpointed; rerun with --resume to continue\n");
  }
  if (!metrics_out.empty()) {
    obs::MetricsRegistry::Global().WriteJson(metrics_out);
  }
  if (!trace_out.empty()) obs::WriteChromeTrace(trace_out);
  if (!result.status.ok()) {
    std::fprintf(stderr, "fleet failed: %s\n",
                 result.status.ToString().c_str());
  }
  return result.ExitCode();
}

int CmdFsck(const Flags& flags) {
  orch::FsckOptions options;
  options.journal_path =
      flags.Get("journal", "results/fleet_journal.jsonl");
  options.checkpoint_dir =
      flags.Get("checkpoint-dir", "results/fleet_checkpoints");
  options.lease_dir = flags.Get("lease-dir", "");
  StatusOr<orch::FsckReport> report = orch::RunFsck(options);
  if (!report.ok()) {
    std::fprintf(stderr, "fsck failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(orch::FormatFsckReport(*report).c_str(), stdout);
  return report->ExitCode();
}

int Usage() {
  std::fprintf(stderr,
               "usage: poisonrec "
               "<datagen|quality|attack|detect|campaign|fleet|trace-merge|"
               "fsck> [--flag=value ...]\n"
               "see tools/poisonrec_cli.cc for the flag list\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv);
  // Kernel-level GEMM threading is a process-wide knob; the same flag
  // also feeds PoisonRecConfig::num_threads for sampling/evaluation.
  nn::SetNumThreads(flags.GetSize("num-threads", 0));
  if (command == "datagen") return CmdDatagen(flags);
  if (command == "quality") return CmdQuality(flags);
  if (command == "attack") return CmdAttack(flags);
  if (command == "detect") return CmdDetect(flags);
  if (command == "campaign") return CmdCampaign(flags);
  if (command == "fleet") return CmdFleet(flags);
  if (command == "trace-merge") return CmdTraceMerge(argc, argv, flags);
  if (command == "fsck") return CmdFsck(flags);
  return Usage();
}

}  // namespace
}  // namespace poisonrec::cli

int main(int argc, char** argv) { return poisonrec::cli::Main(argc, argv); }
