// ItemPop: non-personalized popularity ranker (paper baseline testbed).
// Items are scored by their interaction count; a poisoning attack raises a
// target item's count by repeatedly clicking it.
#ifndef POISONREC_REC_ITEMPOP_H_
#define POISONREC_REC_ITEMPOP_H_

#include <memory>
#include <vector>

#include "rec/recommender.h"

namespace poisonrec::rec {

class ItemPop : public Recommender {
 public:
  explicit ItemPop(const FitConfig& config = FitConfig());

  std::string Name() const override { return "ItemPop"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

 private:
  std::vector<double> counts_;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_ITEMPOP_H_
