// Figure 4: attack performance (RecNum) vs training step for the four
// action-space designs — Plain, BPlain, BCBT-Popular, BCBT-Random — when
// attacking each recommender on Steam. Expected shape (paper §IV-B):
// BCBT-Popular converges fastest/highest; BPlain benefits from the priori
// knowledge but lacks the hierarchy; BCBT-Random trails BCBT-Popular
// (Assumption 1); Plain is worst. On ItemPop/NeuMF, BPlain ~= BCBT-Popular
// because target-only clicking is already optimal there.
#include <cstdio>

#include "bench/common.h"

namespace poisonrec::bench {
namespace {

constexpr core::ActionSpaceKind kDesigns[] = {
    core::ActionSpaceKind::kPlain,
    core::ActionSpaceKind::kBPlain,
    core::ActionSpaceKind::kBcbtPopular,
    core::ActionSpaceKind::kBcbtRandom,
    // Our ablation beyond the paper: hierarchy without the root bias.
    core::ActionSpaceKind::kCbtUnbiased,
};

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Figure 4: RecNum vs training step, 4 action-space designs "
      "(Steam, scale=%.3g, steps=%zu) ==\n",
      config.scale, config.training_steps);

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"ranker", "design", "step", "mean_recnum", "best_recnum"});

  for (const std::string& ranker : config.rankers) {
    auto environment =
        MakeEnvironment(config, data::DatasetPreset::kSteam, ranker);
    std::printf("\n-- %s (baseline RecNum %.0f) --\n", ranker.c_str(),
                environment->BaselineRecNum());
    PrintTableHeader({"Design", "first", "mid", "final", "best"});
    for (core::ActionSpaceKind kind : kDesigns) {
      core::PoisonRecAttacker attacker(
          environment.get(),
          MakePoisonRecConfig(config, kind, config.seed ^ 0xf19u));
      std::vector<core::TrainStepStats> stats =
          attacker.Train(config.training_steps);
      for (const auto& s : stats) {
        csv.push_back({ranker, core::ActionSpaceKindName(kind),
                       std::to_string(s.step), FormatCount(s.mean_reward),
                       FormatCount(s.best_reward_so_far)});
      }
      PrintTableRow({core::ActionSpaceKindName(kind),
                     FormatCount(stats.front().mean_reward),
                     FormatCount(stats[stats.size() / 2].mean_reward),
                     FormatCount(stats.back().mean_reward),
                     FormatCount(stats.back().best_reward_so_far)});
    }
  }
  WriteCsvOutput(config, "fig4_convergence.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
