// Umbrella header: the public API of the PoisonRec library.
//
//   #include "core/poisonrec.h"
//
//   data::Dataset log = data::GenerateSynthetic(...);
//   auto ranker = rec::MakeRecommender("BPR").value();
//   env::AttackEnvironment system(log, std::move(ranker), env_config);
//   core::PoisonRecAttacker attacker(&system, poisonrec_config);
//   attacker.Train(100);
//   double rec_num = system.Evaluate(attacker.BestAttack());
#ifndef POISONREC_CORE_POISONREC_H_
#define POISONREC_CORE_POISONREC_H_

#include "core/action_tree.h"
#include "core/policy.h"
#include "core/ppo.h"
#include "core/trajectory.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "env/environment.h"
#include "rec/registry.h"

#endif  // POISONREC_CORE_POISONREC_H_
