// Append-only structured event stream: one JSONL file unifying what the
// campaign previously scattered across stdout and ad-hoc sinks — guard
// incidents, defender BanEvents, fault/retry outcomes, checkpoint
// save/load, and per-step TrainStepStats records.
//
// Contract:
//   * One event per line; every line is a complete JSON object with at
//     least a "type" key (docs/observability.md lists the schemas).
//   * Append(line) is atomic with respect to concurrent Append calls:
//     the full line plus '\n' goes out in a single fwrite under a mutex,
//     so a reader tailing the file never sees interleaved halves.
//   * Crash-durable by default: FlushPolicy::kEveryLine fflushes after
//     each write, so everything up to the last completed Append survives
//     a crash (the same guarantee util/guard's incident sink had before
//     it migrated here). kOnClose trades that for throughput.
//
// The producer side builds lines with obs::JsonObjectBuilder; EventLog
// itself does not validate JSON.
#ifndef POISONREC_OBS_EVENT_LOG_H_
#define POISONREC_OBS_EVENT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace poisonrec::obs {

class EventLog {
 public:
  enum class FlushPolicy { kEveryLine, kOnClose };

  EventLog() = default;
  ~EventLog() { Close(); }
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens `path` for writing (truncating by default; pass
  /// truncate=false to append, as the guard incident sink does).
  /// False if the file cannot be opened; the log stays closed.
  bool Open(const std::string& path, bool truncate = true,
            FlushPolicy flush = FlushPolicy::kEveryLine);

  /// Writes `line` plus a trailing '\n' as one atomic append. `line`
  /// must be a complete JSON object without the newline. Returns false
  /// (and drops the event) if the log is closed or the write fails.
  bool Append(std::string_view line);

  /// Flushes and closes. Safe to call repeatedly.
  void Close();

  bool is_open() const;
  std::uint64_t lines_written() const;
  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  FlushPolicy flush_ = FlushPolicy::kEveryLine;
  std::string path_;
  std::uint64_t lines_written_ = 0;
};

}  // namespace poisonrec::obs

#endif  // POISONREC_OBS_EVENT_LOG_H_
