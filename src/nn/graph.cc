#include "nn/graph.h"

#include <unordered_set>
#include <utility>

#include "util/logging.h"

namespace poisonrec::nn {

using internal::TensorImpl;

namespace {

thread_local GraphTape* t_current_tape = nullptr;

}  // namespace

void GraphTape::ReplayForward() {
  for (const auto& node : nodes_) {
    node->forward_fn();
  }
}

void GraphTape::ZeroGrads() {
  for (const auto& node : nodes_) {
    if (!node->grad.empty()) {
      std::fill(node->grad.begin(), node->grad.end(), 0.0f);
    }
  }
}

GraphTape* GraphTape::Current() { return t_current_tape; }

GraphTape::RecordScope::RecordScope(GraphTape* tape)
    : previous_(t_current_tape) {
  t_current_tape = tape;
}

GraphTape::RecordScope::~RecordScope() { t_current_tape = previous_; }

void GraphTape::Register(std::shared_ptr<internal::TensorImpl> node) {
  POISONREC_CHECK(node->forward_fn != nullptr);
  nodes_.push_back(std::move(node));
}

void RecordedBackward::Capture(const Tensor& loss) {
  POISONREC_CHECK(loss.defined());
  POISONREC_CHECK(loss.is_scalar());
  POISONREC_CHECK(loss.requires_grad());
  root_ = loss.impl();
  order_.clear();

  // Byte-for-byte the traversal in Tensor::Backward(): iterative
  // post-order DFS from the loss, parents visited in edge order. The
  // stored sequence is the one Backward() would execute, so replaying
  // it preserves every gradient accumulation order.
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root_.get(), 0});
  visited.insert(root_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order_.push_back(frame.node);
      stack.pop_back();
    }
  }
}

void RecordedBackward::Run(const Tensor& loss) const {
  POISONREC_CHECK(loss.defined());
  POISONREC_CHECK(loss.impl() == root_)
      << "RecordedBackward::Run on a different loss than Capture saw";
  root_->EnsureGrad();
  root_->grad[0] += 1.0f;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

void RecordedBackward::Clear() {
  root_.reset();
  order_.clear();
}

}  // namespace poisonrec::nn
