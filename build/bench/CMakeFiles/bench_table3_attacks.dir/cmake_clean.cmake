file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_attacks.dir/bench_table3_attacks.cc.o"
  "CMakeFiles/bench_table3_attacks.dir/bench_table3_attacks.cc.o.d"
  "bench_table3_attacks"
  "bench_table3_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
