# Empty dependencies file for robustness_audit.
# This may be replaced when dependencies are built.
