// AppGrad (Christakopoulou & Banerjee, RecSys'19), adapted per the paper's
// three changes for the implicit-feedback black-box setting: (1) the fake
// interaction matrix M (attackers x items, M_ij = #clicks of attacker i on
// item j) is initialized by sampling discrete behaviors with the priori
// knowledge (about half the clicks on targets); (2) each attacker keeps a
// budget of exactly T clicks; (3) click order is randomized (the method is
// order-agnostic). The approximate gradient of f(M) = -RecNum is estimated
// with SPSA (simultaneous-perturbation), a zeroth-order scheme matching
// the original's query model, and M is projected back to the integer
// budget simplex after every step.
#ifndef POISONREC_ATTACK_APPGRAD_H_
#define POISONREC_ATTACK_APPGRAD_H_

#include "attack/attack.h"

namespace poisonrec::attack {

struct AppGradConfig {
  /// Optimization iterations (each costs 2 reward queries).
  std::size_t iterations = 25;
  /// SPSA perturbation magnitude (clicks).
  double perturbation = 1.0;
  /// Step size applied to the gradient estimate.
  double step_size = 0.5;
};

class AppGradAttack : public AttackMethod {
 public:
  explicit AppGradAttack(const AppGradConfig& config = AppGradConfig());

  std::string Name() const override { return "AppGrad"; }
  std::vector<env::Trajectory> GenerateAttack(
      const env::AttackEnvironment& environment,
      std::uint64_t seed) override;

 private:
  /// Rounds a continuous allocation row to non-negative integers summing
  /// to T (largest-remainder), then expands to a shuffled click list.
  static std::vector<data::ItemId> RowToClicks(
      const std::vector<double>& row, std::size_t budget, Rng* rng);

  /// Materializes M into environment trajectories.
  static std::vector<env::Trajectory> ToTrajectories(
      const std::vector<std::vector<double>>& m, std::size_t budget,
      Rng* rng);

  AppGradConfig config_;
};

}  // namespace poisonrec::attack

#endif  // POISONREC_ATTACK_APPGRAD_H_
