// Shared plumbing for the hand-rolled latent-factor rankers (PMF, BPR):
// flat row-major user/item factor tables with fast dot products. The
// neural rankers use the autograd substrate instead; these two models have
// closed-form SGD updates, so plain buffers are simpler and faster.
#ifndef POISONREC_REC_FACTOR_MODEL_H_
#define POISONREC_REC_FACTOR_MODEL_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "util/random.h"

namespace poisonrec::rec {

/// User/item latent factor tables (row-major, `dim` columns).
struct FactorTables {
  std::size_t dim = 0;
  std::vector<float> user;  // num_users x dim
  std::vector<float> item;  // num_items x dim

  void Init(std::size_t num_users, std::size_t num_items, std::size_t d,
            float stddev, Rng* rng) {
    dim = d;
    user.resize(num_users * d);
    item.resize(num_items * d);
    for (float& v : user) v = static_cast<float>(rng->Normal(0.0, stddev));
    for (float& v : item) v = static_cast<float>(rng->Normal(0.0, stddev));
  }

  float* UserRow(data::UserId u) { return user.data() + u * dim; }
  const float* UserRow(data::UserId u) const { return user.data() + u * dim; }
  float* ItemRow(data::ItemId i) { return item.data() + i * dim; }
  const float* ItemRow(data::ItemId i) const { return item.data() + i * dim; }

  double Dot(data::UserId u, data::ItemId i) const {
    const float* pu = UserRow(u);
    const float* qi = ItemRow(i);
    double acc = 0.0;
    for (std::size_t k = 0; k < dim; ++k) acc += pu[k] * qi[k];
    return acc;
  }

  std::size_t num_users() const { return dim == 0 ? 0 : user.size() / dim; }
  std::size_t num_items() const { return dim == 0 ? 0 : item.size() / dim; }
};

/// Per-user positive-item sets (for negative sampling).
std::vector<std::unordered_set<data::ItemId>> BuildPositiveSets(
    const data::Dataset& dataset);

/// Merges `extra`'s positives into `sets` (resizing for new users).
void MergePositiveSets(const data::Dataset& extra,
                       std::vector<std::unordered_set<data::ItemId>>* sets);

/// Samples an item not in `positives`; falls back to any item after a few
/// rejections (dense users).
data::ItemId SampleNegative(std::size_t num_items,
                            const std::unordered_set<data::ItemId>& positives,
                            Rng* rng);

/// Update-replay mix (see FitConfig::update_replay_ratio): returns the
/// poison events plus `ratio * |poison|` interactions sampled uniformly
/// with replacement from the clean log.
std::vector<data::Interaction> MixWithReplay(
    std::vector<data::Interaction> poison_events,
    const std::vector<data::Interaction>& clean, double ratio, Rng* rng);

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_FACTOR_MODEL_H_
