file(REMOVE_RECURSE
  "libpoisonrec_bench_common.a"
)
