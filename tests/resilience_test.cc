// Resilient-training tests: the PPO loop consuming a FaultyEnvironment
// must retry transient errors, impute rewards it never observes, keep the
// Eq. 8 statistics clean, and still learn — the acceptance bar is a best
// reward within 70% of the fault-free run on the synthetic dataset.
#include <cmath>

#include <gtest/gtest.h>

#include "core/ppo.h"
#include "data/synthetic.h"
#include "env/fault.h"
#include "rec/registry.h"

namespace poisonrec::core {
namespace {

const SleepFn kNoSleep = [](double) {};

struct Fixture {
  Fixture()
      : environment(MakeLog(), rec::MakeRecommender("ItemPop").value(),
                    MakeEnvConfig()) {}

  static data::Dataset MakeLog() {
    data::SyntheticConfig cfg;
    cfg.num_users = 120;
    cfg.num_items = 100;
    cfg.num_interactions = 1200;
    cfg.seed = 3;
    return data::GenerateSynthetic(cfg);
  }

  static env::EnvironmentConfig MakeEnvConfig() {
    env::EnvironmentConfig cfg;
    cfg.num_attackers = 10;
    cfg.trajectory_length = 10;
    cfg.num_target_items = 4;
    cfg.num_candidate_originals = 30;
    cfg.top_k = 5;
    cfg.seed = 11;
    return cfg;
  }

  static PoisonRecConfig MakeAttackerConfig() {
    PoisonRecConfig cfg;
    cfg.samples_per_step = 8;
    cfg.batch_size = 8;
    cfg.update_epochs = 3;
    cfg.policy.embedding_dim = 8;
    cfg.seed = 7;
    return cfg;
  }

  env::AttackEnvironment environment;
};

TEST(ResilienceTest, TrainingSurvivesFaultsAndDegradesGracefully) {
  // The acceptance-criteria profile: 20% query failures, 10% click drops,
  // 5% shadow bans.
  Fixture clean_fixture;
  Fixture faulty_fixture;
  const auto cfg = Fixture::MakeAttackerConfig();
  const std::size_t kSteps = 30;

  PoisonRecAttacker clean(&clean_fixture.environment, cfg);
  clean.Train(kSteps);
  const double clean_best = clean.best_episode().reward;
  ASSERT_GT(clean_best, 0.0);

  env::FaultProfile profile;
  profile.query_failure_rate = 0.2;
  profile.injection_drop_rate = 0.1;
  profile.shadow_ban_rate = 0.05;
  profile.seed = 17;
  env::FaultyEnvironment faulty_env(&faulty_fixture.environment, profile);
  PoisonRecAttacker faulty(&faulty_fixture.environment, cfg);
  faulty.AttachFaultyEnvironment(&faulty_env, kNoSleep);
  const auto stats = faulty.Train(kSteps);

  // Train completed without error for every step.
  ASSERT_EQ(stats.size(), kSteps);
  for (const auto& s : stats) {
    EXPECT_TRUE(std::isfinite(s.loss)) << "step " << s.step;
  }
  // Retries actually happened under a 20% failure rate.
  std::size_t total_retries = 0;
  for (const auto& s : stats) total_retries += s.retries;
  EXPECT_GT(total_retries, 0u);

  // Graceful degradation: the attack learned under faults still reaches
  // >= 70% of the fault-free best reward. The best attack is re-scored on
  // the clean channel — the observed reward under faults is structurally
  // dampened by dropped clicks and banned accounts, which measures the
  // channel, not what the attacker learned.
  const double faulty_best =
      faulty_fixture.environment.Evaluate(faulty.BestAttack());
  EXPECT_GE(faulty_best, 0.7 * clean_best)
      << "faulty best " << faulty_best << " vs clean best " << clean_best;
}

TEST(ResilienceTest, FailedQueriesAreImputedAndExcludedFromStats) {
  Fixture f;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.retry.max_attempts = 1;  // no retries: failures stay failed

  env::FaultProfile profile;
  profile.query_failure_rate = 0.5;
  profile.seed = 23;
  env::FaultyEnvironment faulty_env(&f.environment, profile);
  PoisonRecAttacker attacker(&f.environment, cfg);
  attacker.AttachFaultyEnvironment(&faulty_env, kNoSleep);

  bool saw_failure = false;
  for (int s = 0; s < 6; ++s) {
    TrainStepStats stats = attacker.TrainStep();
    if (stats.failed_queries == 0) continue;
    saw_failure = true;
    EXPECT_EQ(stats.retries, 0u);
    // Imputation only happens when at least one reward was observed.
    if (stats.failed_queries < cfg.samples_per_step) {
      EXPECT_EQ(stats.imputed_rewards, stats.failed_queries);
      // Observed-only statistics stay coherent.
      EXPECT_GE(stats.max_reward, stats.mean_reward);
      EXPECT_GE(stats.mean_reward, stats.min_reward);
    } else {
      EXPECT_EQ(stats.imputed_rewards, 0u);
    }
    EXPECT_TRUE(std::isfinite(stats.loss));
  }
  EXPECT_TRUE(saw_failure);
}

TEST(ResilienceTest, RetriesRecoverTransientFailures) {
  Fixture f;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.retry.max_attempts = 6;

  env::FaultProfile profile;
  profile.query_failure_rate = 0.3;
  profile.seed = 29;
  env::FaultyEnvironment faulty_env(&f.environment, profile);
  PoisonRecAttacker attacker(&f.environment, cfg);
  attacker.AttachFaultyEnvironment(&faulty_env, kNoSleep);

  std::size_t total_retries = 0;
  std::size_t total_failures = 0;
  for (int s = 0; s < 4; ++s) {
    TrainStepStats stats = attacker.TrainStep();
    total_retries += stats.retries;
    total_failures += stats.failed_queries;
  }
  EXPECT_GT(total_retries, 0u);
  // With 6 attempts against a 30% failure rate, queries essentially
  // always recover (p_fail = 0.3^6 ~ 7e-4 per query).
  EXPECT_EQ(total_failures, 0u);
}

TEST(ResilienceTest, ParallelAndSequentialFaultyTrainingMatch) {
  Fixture f_seq;
  Fixture f_par;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.retry.max_attempts = 3;

  env::FaultProfile profile;
  profile.query_failure_rate = 0.2;
  profile.injection_drop_rate = 0.1;
  profile.shadow_ban_rate = 0.05;
  profile.reward_noise_stddev = 1.0;
  profile.seed = 31;

  env::FaultyEnvironment faulty_seq(&f_seq.environment, profile);
  PoisonRecAttacker sequential(&f_seq.environment, cfg);
  sequential.AttachFaultyEnvironment(&faulty_seq, kNoSleep);

  cfg.parallel_rewards = true;
  cfg.num_threads = 4;
  env::FaultyEnvironment faulty_par(&f_par.environment, profile);
  PoisonRecAttacker parallel(&f_par.environment, cfg);
  parallel.AttachFaultyEnvironment(&faulty_par, kNoSleep);

  for (int step = 0; step < 3; ++step) {
    auto a = sequential.TrainStep();
    auto b = parallel.TrainStep();
    EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward) << "step " << step;
    EXPECT_DOUBLE_EQ(a.loss, b.loss) << "step " << step;
    EXPECT_EQ(a.failed_queries, b.failed_queries) << "step " << step;
    EXPECT_EQ(a.retries, b.retries) << "step " << step;
  }
}

TEST(ResilienceTest, TotalBlackoutSkipsUpdatesButDoesNotCrash) {
  Fixture f;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.retry.max_attempts = 2;

  env::FaultProfile profile;
  profile.query_failure_rate = 1.0;  // nothing ever succeeds
  env::FaultyEnvironment faulty_env(&f.environment, profile);
  PoisonRecAttacker attacker(&f.environment, cfg);
  attacker.AttachFaultyEnvironment(&faulty_env, kNoSleep);

  TrainStepStats stats = attacker.TrainStep();
  EXPECT_EQ(stats.failed_queries, cfg.samples_per_step);
  EXPECT_EQ(stats.imputed_rewards, 0u);
  EXPECT_DOUBLE_EQ(stats.loss, 0.0);
  EXPECT_DOUBLE_EQ(stats.best_reward_so_far, 0.0);
  EXPECT_EQ(attacker.steps_taken(), 1u);
}

}  // namespace
}  // namespace poisonrec::core
