// Fleet orchestration harness: runs the same campaign sweep under the
// supervised orchestrator at increasing worker counts and reports
// wall-clock scaling plus the orchestration overhead (journal +
// supervision + per-step durable checkpoints) relative to the summed
// campaign runtimes. Also asserts the orchestrator's core determinism
// property: per-step committed rewards are bit-identical at every
// concurrency level.
//
// Output: results/fleet_scaling.{csv,json} with one row per worker
// count.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "orch/fleet.h"
#include "orch/spec.h"

namespace poisonrec::bench {
namespace {

orch::FleetPlan MakePlan(const BenchConfig& config) {
  orch::FleetPlan plan;
  plan.name = "bench-fleet";
  const std::vector<std::string> presets = {"clean", "clean", "flaky",
                                            "flaky"};
  for (std::size_t i = 0; i < presets.size(); ++i) {
    orch::CampaignSpec spec;
    spec.id = "campaign" + std::to_string(i) + "-" + presets[i];
    spec.fault_preset = presets[i];
    spec.fault = *orch::FaultPresetProfile(presets[i]);
    spec.fault.seed = 1234 + i;
    spec.steps = config.training_steps;
    spec.samples_per_step = config.samples_per_step;
    spec.attackers = config.num_attackers;
    spec.trajectory_length = config.trajectory_length;
    spec.num_target_items = config.num_target_items;
    spec.embedding_dim = config.embedding_dim;
    spec.max_eval_users = config.max_eval_users;
    spec.seed = config.seed + i * 101;
    plan.campaigns.push_back(std::move(spec));
  }
  return plan;
}

int Run() {
  const BenchConfig config = LoadBenchConfig();
  const data::Dataset log = MakeDataset(config, data::DatasetPreset::kSteam);
  const orch::FleetPlan plan = MakePlan(config);
  std::printf("fleet scaling: %zu campaigns x %zu steps, dataset scale "
              "%.2f\n",
              plan.campaigns.size(), config.training_steps, config.scale);

  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "poisonrec_bench_fleet")
          .string();

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"workers", "wall_seconds", "campaign_seconds_sum",
                  "overhead_ratio", "speedup", "done", "identical"});
  PrintTableHeader(
      {"workers", "wall s", "sum s", "overhead", "speedup", "identical"});

  double serial_wall = 0.0;
  std::map<std::string, std::map<std::uint64_t, double>> reference;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    std::filesystem::remove_all(work_dir);
    orch::FleetOptions options;
    options.journal_path = work_dir + "/journal.jsonl";
    options.checkpoint_dir = work_dir + "/ckpts";
    options.report_json_path.clear();
    options.report_csv_path.clear();
    options.max_concurrent = workers;
    orch::FleetOrchestrator orchestrator(plan, &log, options);
    const orch::FleetResult result = orchestrator.Run();
    if (result.ExitCode() != 0) {
      std::fprintf(stderr, "fleet run failed at %zu workers: %s\n", workers,
                   result.status.ToString().c_str());
      return 1;
    }
    double campaign_sum = 0.0;
    bool identical = true;
    for (const orch::CampaignOutcome& outcome : result.outcomes) {
      campaign_sum += outcome.wall_seconds;
      if (workers == 1) {
        reference[outcome.id] = outcome.step_rewards;
      } else if (reference[outcome.id] != outcome.step_rewards) {
        identical = false;
      }
    }
    if (workers == 1) serial_wall = result.wall_seconds;
    const double overhead =
        campaign_sum > 0.0 ? result.wall_seconds * workers / campaign_sum
                           : 0.0;
    const double speedup =
        result.wall_seconds > 0.0 ? serial_wall / result.wall_seconds : 0.0;
    const auto seconds = [](double v) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.2f", v);
      return std::string(buffer);
    };
    PrintTableRow({std::to_string(workers), seconds(result.wall_seconds),
                   seconds(campaign_sum), seconds(overhead),
                   seconds(speedup), identical ? "yes" : "NO"});
    rows.push_back({std::to_string(workers),
                    std::to_string(result.wall_seconds),
                    std::to_string(campaign_sum), std::to_string(overhead),
                    std::to_string(speedup), std::to_string(result.done),
                    identical ? "1" : "0"});
    if (!identical) {
      std::fprintf(stderr,
                   "fleet run at %zu workers produced different step "
                   "rewards than the serial run\n",
                   workers);
      return 1;
    }
  }
  std::filesystem::remove_all(work_dir);
  WriteCsvOutput(config, "fleet_scaling.csv", rows);
  WriteJsonOutput(config, "fleet_scaling.json", rows);
  return 0;
}

}  // namespace
}  // namespace poisonrec::bench

int main() { return poisonrec::bench::Run(); }
