#include "orch/fsck.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "orch/journal.h"
#include "orch/lease.h"
#include "util/fsio.h"

namespace poisonrec::orch {
namespace {

namespace fs = std::filesystem;

// Mirrors the checkpoint header in core/ppo.cc (kept file-local there;
// fsck only classifies, it never parses the payload).
constexpr std::uint32_t kCheckpointMagic = 0x5052434bu;  // "PRCK"
constexpr std::uint32_t kCheckpointVersion = 4;

/// `<id>.ckpt` or `<id>.t<token>.ckpt` -> campaign id.
std::string CampaignIdFromCheckpointName(const std::string& filename) {
  std::string stem = filename;
  const std::string ext = ".ckpt";
  if (stem.size() >= ext.size() &&
      stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0) {
    stem.resize(stem.size() - ext.size());
  }
  const std::size_t dot = stem.rfind(".t");
  if (dot != std::string::npos && dot + 2 < stem.size()) {
    bool digits = true;
    for (std::size_t i = dot + 2; i < stem.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(stem[i])) == 0) {
        digits = false;
        break;
      }
    }
    if (digits) stem.resize(dot);
  }
  return stem;
}

/// Classifies one checkpoint file the same way LoadCheckpoint would
/// fail on it, without parsing the payload.
FsckArtifact AuditCheckpoint(const std::string& path) {
  FsckArtifact artifact;
  artifact.kind = FsckArtifactKind::kCheckpoint;
  artifact.path = path;
  StatusOr<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    artifact.verdict = bytes.status().code() == StatusCode::kNotFound
                           ? FsckVerdict::kMissing
                           : FsckVerdict::kCorrupt;
    artifact.detail = "unreadable";
    return artifact;
  }
  std::uint32_t header[2] = {0, 0};
  if (bytes->size() < sizeof(header)) {
    artifact.verdict = FsckVerdict::kTorn;
    artifact.detail = "shorter than the checkpoint header (torn publish)";
    return artifact;
  }
  std::memcpy(header, bytes->data(), sizeof(header));
  if (header[0] != kCheckpointMagic) {
    artifact.verdict = FsckVerdict::kCorrupt;
    artifact.detail = "not a PoisonRec attacker checkpoint";
    return artifact;
  }
  if (header[1] != kCheckpointVersion) {
    artifact.verdict = FsckVerdict::kCorrupt;
    artifact.detail =
        "unsupported checkpoint version " + std::to_string(header[1]);
    return artifact;
  }
  std::size_t payload_size = 0;
  FileIntegrity integrity = FileIntegrity::kOk;
  const Status verified =
      VerifyIntegrityFooter(*bytes, path, &payload_size, &integrity);
  if (!verified.ok()) {
    artifact.verdict = integrity == FileIntegrity::kTorn ? FsckVerdict::kTorn
                                                         : FsckVerdict::kCorrupt;
    // Strip the "<path>: " prefix VerifyIntegrityFooter bakes into its
    // message — the table already has a path column.
    std::string message = verified.message();
    const std::string prefix = path + ": ";
    if (message.compare(0, prefix.size(), prefix) == 0) {
      message.erase(0, prefix.size());
    }
    artifact.detail = message;
    return artifact;
  }
  artifact.verdict = FsckVerdict::kOk;
  artifact.detail = std::to_string(payload_size) + " payload bytes";
  return artifact;
}

FsckArtifact AuditJournalFile(const std::string& path) {
  FsckArtifact artifact;
  artifact.kind = FsckArtifactKind::kJournal;
  artifact.path = path;
  StatusOr<JournalReplayResult> replay = FleetJournal::Replay({path});
  if (!replay.ok()) {
    artifact.verdict = FsckVerdict::kCorrupt;
    artifact.detail = replay.status().message();
    return artifact;
  }
  const std::uint64_t interior =
      replay->malformed_lines + replay->corrupt_lines;
  if (interior > 0) {
    // Interior records are unrecoverable: replay skips them, but the
    // transitions they carried are lost for good.
    artifact.verdict = FsckVerdict::kCorrupt;
    std::ostringstream detail;
    detail << interior << " interior record" << (interior == 1 ? "" : "s")
           << " lost (" << replay->malformed_lines << " malformed, "
           << replay->corrupt_lines << " checksum-corrupt)";
    if (replay->torn_tail_lines > 0) detail << ", torn tail";
    artifact.detail = detail.str();
    return artifact;
  }
  if (replay->torn_tail_lines > 0) {
    artifact.verdict = FsckVerdict::kTornTail;
    artifact.repairable = true;  // replay tolerates the crash frontier
    artifact.detail = "torn final line (crash frontier); replay skips it";
    return artifact;
  }
  artifact.verdict = FsckVerdict::kOk;
  artifact.detail =
      std::to_string(replay->campaigns.size()) + " campaign(s) replayed";
  return artifact;
}

FsckArtifact AuditLease(const LeaseManager& manager,
                        const std::string& campaign_id,
                        const std::string& path) {
  FsckArtifact artifact;
  artifact.kind = FsckArtifactKind::kLease;
  artifact.path = path;
  StatusOr<LeaseInfo> info = manager.Read(campaign_id);
  if (info.ok()) {
    artifact.verdict = FsckVerdict::kOk;
    artifact.detail = info->owner.empty()
                          ? "released, token " + std::to_string(info->token)
                          : "held by " + info->owner + ", token " +
                                std::to_string(info->token);
    return artifact;
  }
  if (info.status().code() == StatusCode::kNotFound) {
    artifact.verdict = FsckVerdict::kMissing;
    artifact.detail = "lease file vanished mid-audit";
    return artifact;
  }
  // Damaged lease files are always repairable: the next Acquire holds
  // the flock sidecar and rewrites the lease from scratch.
  artifact.verdict = FsckVerdict::kCorrupt;
  artifact.repairable = true;
  std::string message = info.status().message();
  const std::string prefix = path + ": ";
  if (message.compare(0, prefix.size(), prefix) == 0) {
    message.erase(0, prefix.size());
  }
  artifact.detail = message;
  return artifact;
}

bool IsDamage(const FsckArtifact& artifact) {
  return artifact.kind != FsckArtifactKind::kQuarantined &&
         artifact.verdict != FsckVerdict::kOk &&
         artifact.verdict != FsckVerdict::kMissing;
}

}  // namespace

const char* FsckArtifactKindName(FsckArtifactKind kind) {
  switch (kind) {
    case FsckArtifactKind::kJournal:
      return "journal";
    case FsckArtifactKind::kCheckpoint:
      return "checkpoint";
    case FsckArtifactKind::kLease:
      return "lease";
    case FsckArtifactKind::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

const char* FsckVerdictName(FsckVerdict verdict) {
  switch (verdict) {
    case FsckVerdict::kOk:
      return "ok";
    case FsckVerdict::kTornTail:
      return "torn_tail";
    case FsckVerdict::kTorn:
      return "torn";
    case FsckVerdict::kCorrupt:
      return "corrupt";
    case FsckVerdict::kMissing:
      return "missing";
  }
  return "unknown";
}

int FsckReport::ExitCode() const {
  if (damaged_unrepairable > 0) return 1;
  if (damaged_repairable > 0) return 2;
  return 0;
}

StatusOr<FsckReport> RunFsck(const FsckOptions& options) {
  if (options.journal_path.empty() && options.checkpoint_dir.empty() &&
      options.lease_dir.empty()) {
    return Status::InvalidArgument(
        "fsck needs at least one of journal_path / checkpoint_dir / "
        "lease_dir");
  }
  FsckReport report;

  // -- Journal family ---------------------------------------------------
  if (!options.journal_path.empty()) {
    const std::vector<std::string> files =
        FleetJournal::ListJournalFiles(options.journal_path);
    if (files.empty()) {
      FsckArtifact artifact;
      artifact.kind = FsckArtifactKind::kJournal;
      artifact.path = options.journal_path;
      artifact.verdict = FsckVerdict::kMissing;
      artifact.detail = "no journal files (fleet never ran, or wrong path)";
      report.artifacts.push_back(std::move(artifact));
    }
    for (const std::string& file : files) {
      report.artifacts.push_back(AuditJournalFile(file));
    }
  }

  // -- Checkpoints (and prior quarantines) ------------------------------
  std::string checkpoint_dir = options.checkpoint_dir;
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    if (!fs::is_directory(checkpoint_dir, ec)) {
      FsckArtifact artifact;
      artifact.kind = FsckArtifactKind::kCheckpoint;
      artifact.path = checkpoint_dir;
      artifact.verdict = FsckVerdict::kMissing;
      artifact.detail = "checkpoint directory does not exist";
      report.artifacts.push_back(std::move(artifact));
    } else {
      std::vector<std::string> paths;
      for (const fs::directory_entry& entry :
           fs::directory_iterator(checkpoint_dir, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        const std::string name = entry.path().filename().string();
        if (name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".ckpt") != 0) {
          continue;
        }
        paths.push_back(entry.path().string());
      }
      std::sort(paths.begin(), paths.end());
      // First pass: verdicts. Second pass: a damaged checkpoint is
      // repairable iff an intact sibling for the same campaign exists
      // (the supervisor's quarantine-and-fall-back path).
      std::map<std::string, bool> campaign_has_intact;
      std::vector<FsckArtifact> checkpoints;
      checkpoints.reserve(paths.size());
      for (const std::string& path : paths) {
        FsckArtifact artifact = AuditCheckpoint(path);
        const std::string id =
            CampaignIdFromCheckpointName(fs::path(path).filename().string());
        if (artifact.verdict == FsckVerdict::kOk) {
          campaign_has_intact[id] = true;
        }
        checkpoints.push_back(std::move(artifact));
      }
      for (FsckArtifact& artifact : checkpoints) {
        if (IsDamage(artifact)) {
          const std::string id = CampaignIdFromCheckpointName(
              fs::path(artifact.path).filename().string());
          auto it = campaign_has_intact.find(id);
          artifact.repairable =
              it != campaign_has_intact.end() && it->second;
          if (artifact.repairable) {
            artifact.detail += "; intact sibling checkpoint exists";
          }
        }
        report.artifacts.push_back(std::move(artifact));
      }
      // Prior quarantines: informational only.
      const fs::path quarantine_dir = fs::path(checkpoint_dir) / "corrupt";
      if (fs::is_directory(quarantine_dir, ec)) {
        std::vector<std::string> quarantined;
        for (const fs::directory_entry& entry :
             fs::directory_iterator(quarantine_dir, ec)) {
          if (entry.is_regular_file(ec)) {
            quarantined.push_back(entry.path().string());
          }
        }
        std::sort(quarantined.begin(), quarantined.end());
        for (const std::string& path : quarantined) {
          FsckArtifact artifact = AuditCheckpoint(path);
          artifact.kind = FsckArtifactKind::kQuarantined;
          artifact.repairable = false;
          report.artifacts.push_back(std::move(artifact));
        }
      }
    }
  }

  // -- Leases -----------------------------------------------------------
  std::string lease_dir = options.lease_dir;
  if (lease_dir.empty() && !checkpoint_dir.empty()) {
    lease_dir = (fs::path(checkpoint_dir) / "leases").string();
  }
  if (!lease_dir.empty()) {
    std::error_code ec;
    if (fs::is_directory(lease_dir, ec)) {
      const LeaseManager manager(lease_dir, "fsck", 1.0);
      std::vector<std::pair<std::string, std::string>> leases;  // id, path
      for (const fs::directory_entry& entry :
           fs::directory_iterator(lease_dir, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        const fs::path& p = entry.path();
        if (p.extension() != ".lease") continue;
        leases.emplace_back(p.stem().string(), p.string());
      }
      std::sort(leases.begin(), leases.end());
      for (const auto& [id, path] : leases) {
        report.artifacts.push_back(AuditLease(manager, id, path));
      }
    }
    // A missing lease dir is normal for single-process fleets: silence.
  }

  for (const FsckArtifact& artifact : report.artifacts) {
    if (IsDamage(artifact)) {
      if (artifact.repairable) {
        ++report.damaged_repairable;
      } else {
        ++report.damaged_unrepairable;
      }
    } else if (artifact.verdict == FsckVerdict::kOk) {
      ++report.intact;
    }
  }
  return report;
}

std::string FormatFsckReport(const FsckReport& report) {
  std::size_t path_width = 4;
  for (const FsckArtifact& artifact : report.artifacts) {
    path_width = std::max(path_width, artifact.path.size());
  }
  path_width = std::min<std::size_t>(path_width, 60);
  std::ostringstream out;
  out << "KIND         VERDICT    REPAIR  ";
  out << "PATH";
  for (std::size_t i = 4; i < path_width; ++i) out << ' ';
  out << "  DETAIL\n";
  for (const FsckArtifact& artifact : report.artifacts) {
    std::string kind = FsckArtifactKindName(artifact.kind);
    kind.resize(13, ' ');
    std::string verdict = FsckVerdictName(artifact.verdict);
    verdict.resize(11, ' ');
    std::string repair = IsDamage(artifact)
                             ? (artifact.repairable ? "yes" : "NO")
                             : "-";
    repair.resize(8, ' ');
    std::string path = artifact.path;
    if (path.size() < path_width) path.resize(path_width, ' ');
    out << kind << verdict << repair << path << "  " << artifact.detail
        << "\n";
  }
  out << "fsck: " << report.intact << " intact, " << report.damaged_repairable
      << " repairable, " << report.damaged_unrepairable
      << " unrepairable (exit " << report.ExitCode() << ")\n";
  return out.str();
}

}  // namespace poisonrec::orch
