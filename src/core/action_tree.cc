#include "core/action_tree.h"

#include <algorithm>

#include "util/logging.h"

namespace poisonrec::core {

namespace {

// Leaf count of the left child in a complete binary tree with `n` leaves
// whose deepest level is left-aligned.
std::size_t LeftSplit(std::size_t n) {
  POISONREC_CHECK_GE(n, 2u);
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;  // cap = 2^ceil(log2 n)
  const std::size_t bottom = 2 * n - cap;  // leaves on the deepest level
  const std::size_t half = cap / 2;
  if (bottom >= half) return half;
  return (bottom + half) / 2;
}

}  // namespace

ActionTree::ActionTree(const std::vector<data::ItemId>& target_leaves,
                       const std::vector<data::ItemId>& original_leaves) {
  POISONREC_CHECK(!target_leaves.empty());
  POISONREC_CHECK(!original_leaves.empty());
  nodes_.reserve(2 * (target_leaves.size() + original_leaves.size()) + 1);
  const int target_root =
      BuildComplete(target_leaves, 0, target_leaves.size());
  const int original_root =
      BuildComplete(original_leaves, 0, original_leaves.size());
  // Merged root: left = target subtree (priori knowledge), right = I.
  root_ = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{target_root, original_root, -1, -1});
  nodes_[static_cast<std::size_t>(target_root)].parent = root_;
  nodes_[static_cast<std::size_t>(original_root)].parent = root_;

  data::ItemId max_item = 0;
  for (const Node& n : nodes_) {
    if (n.item >= 0) {
      max_item = std::max(max_item, static_cast<data::ItemId>(n.item));
    }
  }
  leaf_of_item_.assign(max_item + 1, -1);
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].item >= 0) {
      leaf_of_item_[static_cast<std::size_t>(nodes_[id].item)] =
          static_cast<int>(id);
    }
  }
  max_depth_ = ComputeDepth(root_);
}

ActionTree::ActionTree(const std::vector<data::ItemId>& leaves) {
  POISONREC_CHECK_GE(leaves.size(), 2u);
  nodes_.reserve(2 * leaves.size());
  root_ = BuildComplete(leaves, 0, leaves.size());

  data::ItemId max_item = 0;
  for (const Node& n : nodes_) {
    if (n.item >= 0) {
      max_item = std::max(max_item, static_cast<data::ItemId>(n.item));
    }
  }
  leaf_of_item_.assign(max_item + 1, -1);
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].item >= 0) {
      leaf_of_item_[static_cast<std::size_t>(nodes_[id].item)] =
          static_cast<int>(id);
    }
  }
  max_depth_ = ComputeDepth(root_);
}

int ActionTree::BuildComplete(const std::vector<data::ItemId>& leaves,
                              std::size_t begin, std::size_t count) {
  if (count == 1) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{-1, -1, -1, static_cast<long>(leaves[begin])});
    return id;
  }
  const std::size_t left_count = LeftSplit(count);
  const int left = BuildComplete(leaves, begin, left_count);
  const int right =
      BuildComplete(leaves, begin + left_count, count - left_count);
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{left, right, -1, -1});
  nodes_[static_cast<std::size_t>(left)].parent = id;
  nodes_[static_cast<std::size_t>(right)].parent = id;
  return id;
}

int ActionTree::Sibling(int id) const {
  const int parent = node(id).parent;
  if (parent < 0) return -1;
  const Node& p = node(parent);
  return p.left == id ? p.right : p.left;
}

int ActionTree::LeafOf(data::ItemId item) const {
  if (item >= leaf_of_item_.size()) return -1;
  return leaf_of_item_[item];
}

void ActionTree::CollectLeaves(int id, std::vector<data::ItemId>* out) const {
  const Node& n = node(id);
  if (n.item >= 0) {
    out->push_back(static_cast<data::ItemId>(n.item));
    return;
  }
  CollectLeaves(n.left, out);
  CollectLeaves(n.right, out);
}

std::vector<data::ItemId> ActionTree::LeavesInOrder() const {
  std::vector<data::ItemId> out;
  CollectLeaves(root_, &out);
  return out;
}

std::size_t ActionTree::ComputeDepth(int id) const {
  const Node& n = node(id);
  if (n.item >= 0) return 1;
  return 1 + std::max(ComputeDepth(n.left), ComputeDepth(n.right));
}

}  // namespace poisonrec::core
