// ParallelFor tests + the determinism property of parallel reward
// evaluation in the PPO trainer.
#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ppo.h"
#include "data/synthetic.h"
#include "rec/registry.h"

namespace poisonrec {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> visits(100);
  ParallelFor(100, 4, [&visits](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, 1, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  ParallelFor(3, 16, [&total](std::size_t i) {
    total += static_cast<int>(i);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelForTest, ResultMatchesSequential) {
  std::vector<double> parallel_out(200);
  std::vector<double> sequential_out(200);
  auto work = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 1000; ++k) {
      acc += static_cast<double>((i * 31 + k) % 97);
    }
    return acc;
  };
  ParallelFor(200, 8, [&](std::size_t i) { parallel_out[i] = work(i); });
  for (std::size_t i = 0; i < 200; ++i) sequential_out[i] = work(i);
  EXPECT_EQ(parallel_out, sequential_out);
}

TEST(ParallelForTest, WorkerExceptionRethrowsOnCallingThread) {
  EXPECT_THROW(
      ParallelFor(64, 4,
                  [](std::size_t i) {
                    if (i == 17) throw std::runtime_error("worker boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, WorkerExceptionPreservesMessage) {
  try {
    ParallelFor(8, 3, [](std::size_t i) {
      if (i == 5) throw std::runtime_error("index five failed");
    });
    FAIL() << "ParallelFor should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "index five failed");
  }
}

TEST(ParallelForTest, SingleThreadedExceptionAlsoPropagates) {
  EXPECT_THROW(ParallelFor(4, 1,
                           [](std::size_t i) {
                             if (i == 2) throw std::runtime_error("seq boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, UsableAfterWorkerException) {
  // A throw must not wedge or leak threads: the next call still works.
  try {
    ParallelFor(32, 4, [](std::size_t) {
      throw std::runtime_error("every worker throws");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  ParallelFor(32, 4, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForTest, PoolPersistsAcrossCalls) {
  // The pool is spawn-once: helper threads stick around after a call
  // instead of being joined, so later calls reuse them.
  ParallelFor(64, 4, [](std::size_t) {});
  const std::size_t after_first = internal::PoolThreadCount();
  EXPECT_GE(after_first, 3u);  // caller + >=3 helpers for 4-way execution
  ParallelFor(64, 4, [](std::size_t) {});
  EXPECT_EQ(internal::PoolThreadCount(), after_first);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  std::vector<std::atomic<int>> visits(6 * 8);
  ParallelFor(6, 3, [&visits](std::size_t outer) {
    ParallelFor(8, 4, [&visits, outer](std::size_t inner) {
      ++visits[outer * 8 + inner];
    });
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, InParallelWorkerFlag) {
  EXPECT_FALSE(InParallelWorker());
  std::atomic<int> inside_sightings{0};
  ParallelFor(32, 4, [&inside_sightings](std::size_t) {
    if (InParallelWorker()) ++inside_sightings;
  });
  // Every index executes inside the parallel region — on a helper or on
  // the participating caller — and the flag must reset once the region
  // ends.
  EXPECT_EQ(inside_sightings.load(), 32);
  EXPECT_FALSE(InParallelWorker());
}

TEST(ParallelRewards, TrainingIsIdenticalToSequential) {
  auto make_env = []() {
    data::SyntheticConfig cfg;
    cfg.num_users = 100;
    cfg.num_items = 80;
    cfg.num_interactions = 1000;
    cfg.seed = 3;
    env::EnvironmentConfig env_cfg;
    env_cfg.num_attackers = 6;
    env_cfg.trajectory_length = 6;
    env_cfg.num_target_items = 3;
    env_cfg.num_candidate_originals = 20;
    env_cfg.seed = 11;
    return std::make_unique<env::AttackEnvironment>(
        data::GenerateSynthetic(cfg),
        rec::MakeRecommender("ItemPop").value(), env_cfg);
  };
  auto env_seq = make_env();
  auto env_par = make_env();

  core::PoisonRecConfig cfg;
  cfg.samples_per_step = 6;
  cfg.batch_size = 6;
  cfg.update_epochs = 2;
  cfg.policy.embedding_dim = 8;
  cfg.seed = 5;

  core::PoisonRecAttacker sequential(env_seq.get(), cfg);
  cfg.parallel_rewards = true;
  cfg.num_threads = 4;
  core::PoisonRecAttacker parallel(env_par.get(), cfg);

  for (int step = 0; step < 3; ++step) {
    auto a = sequential.TrainStep();
    auto b = parallel.TrainStep();
    EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward) << "step " << step;
    EXPECT_DOUBLE_EQ(a.loss, b.loss) << "step " << step;
  }
}

std::unique_ptr<env::AttackEnvironment> MakeSamplingEnv() {
  data::SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 80;
  cfg.num_interactions = 1000;
  cfg.seed = 3;
  env::EnvironmentConfig env_cfg;
  env_cfg.num_attackers = 6;
  env_cfg.trajectory_length = 6;
  env_cfg.num_target_items = 3;
  env_cfg.num_candidate_originals = 20;
  env_cfg.seed = 11;
  return std::make_unique<env::AttackEnvironment>(
      data::GenerateSynthetic(cfg), rec::MakeRecommender("ItemPop").value(),
      env_cfg);
}

void ExpectSameTrajectories(const std::vector<core::SampledTrajectory>& a,
                            const std::vector<core::SampledTrajectory>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].attacker_index, b[t].attacker_index);
    ASSERT_EQ(a[t].steps.size(), b[t].steps.size());
    for (std::size_t s = 0; s < a[t].steps.size(); ++s) {
      EXPECT_EQ(a[t].steps[s].item, b[t].steps[s].item);
      EXPECT_EQ(a[t].steps[s].path, b[t].steps[s].path);
      ASSERT_EQ(a[t].steps[s].old_log_probs.size(),
                b[t].steps[s].old_log_probs.size());
      for (std::size_t p = 0; p < a[t].steps[s].old_log_probs.size(); ++p) {
        EXPECT_DOUBLE_EQ(a[t].steps[s].old_log_probs[p],
                         b[t].steps[s].old_log_probs[p]);
      }
    }
  }
}

// Episode sampling draws from per-episode streams derived from
// (seed, step, m), so the sampled trajectories — and everything
// downstream of them — are bit-identical whether the M rollouts run on
// one thread or many, with parallel sampling on or off.
TEST(ParallelSampling, TrainStepIsThreadCountInvariant) {
  auto env_seq = MakeSamplingEnv();
  auto env_par = MakeSamplingEnv();

  core::PoisonRecConfig cfg;
  cfg.samples_per_step = 6;
  cfg.batch_size = 6;
  cfg.update_epochs = 2;
  cfg.policy.embedding_dim = 8;
  cfg.seed = 5;

  cfg.parallel_sampling = false;
  cfg.num_threads = 1;
  core::PoisonRecAttacker sequential(env_seq.get(), cfg);
  cfg.parallel_sampling = true;
  cfg.num_threads = 4;
  core::PoisonRecAttacker threaded(env_par.get(), cfg);

  for (int step = 0; step < 3; ++step) {
    auto a = sequential.TrainStep();
    auto b = threaded.TrainStep();
    EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward) << "step " << step;
    EXPECT_DOUBLE_EQ(a.max_reward, b.max_reward) << "step " << step;
    EXPECT_DOUBLE_EQ(a.min_reward, b.min_reward) << "step " << step;
    EXPECT_DOUBLE_EQ(a.loss, b.loss) << "step " << step;
    ExpectSameTrajectories(sequential.best_episode().trajectories,
                           threaded.best_episode().trajectories);
  }
}

// Per-phase timing satellite: the breakdown must be populated and not
// (detectably) exceed the step total.
TEST(ParallelSampling, TrainStepReportsPhaseTimings) {
  auto env = MakeSamplingEnv();
  core::PoisonRecConfig cfg;
  cfg.samples_per_step = 4;
  cfg.batch_size = 4;
  cfg.update_epochs = 1;
  cfg.policy.embedding_dim = 8;
  cfg.seed = 7;
  core::PoisonRecAttacker attacker(env.get(), cfg);
  const core::TrainStepStats stats = attacker.TrainStep();
  EXPECT_GE(stats.sample_seconds, 0.0);
  EXPECT_GE(stats.query_seconds, 0.0);
  EXPECT_GE(stats.update_seconds, 0.0);
  EXPECT_GT(stats.sample_seconds + stats.query_seconds + stats.update_seconds,
            0.0);
  EXPECT_LE(stats.sample_seconds + stats.query_seconds + stats.update_seconds,
            stats.seconds + 1e-6);
}

}  // namespace
}  // namespace poisonrec
