# Empty dependencies file for action_tree_test.
# This may be replaced when dependencies are built.
