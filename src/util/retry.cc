#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace poisonrec {

bool RetryPolicy::IsRetriable(StatusCode code) const {
  return std::find(retriable.begin(), retriable.end(), code) !=
         retriable.end();
}

RetryBackoff::RetryBackoff(const RetryPolicy& policy,
                           std::uint64_t jitter_seed)
    : base_(policy.initial_backoff_seconds),
      cap_(policy.max_backoff_seconds),
      previous_(policy.initial_backoff_seconds),
      rng_(jitter_seed) {}

double RetryBackoff::NextDelaySeconds() {
  if (first_) {
    first_ = false;
    previous_ = base_;
    return base_;
  }
  const double hi = std::max(base_, 3.0 * previous_);
  const double delay = std::min(cap_, rng_.Uniform(base_, hi));
  previous_ = delay;
  return delay;
}

namespace internal {

void SleepForSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

std::uint64_t NowTicks() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double ElapsedSecondsSince(std::uint64_t start_ticks) {
  return static_cast<double>(NowTicks() - start_ticks) * 1e-9;
}

}  // namespace internal
}  // namespace poisonrec
