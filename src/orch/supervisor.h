// Per-campaign supervisor: wraps one PoisonRec attack campaign
// (core::PoisonRecAttacker::TrainGuarded) in a fault-tolerant lifecycle.
//
// The supervisor owns the campaign's CancelToken and heartbeat clock.
// It builds the environment stack (ranker -> AttackEnvironment ->
// FaultyEnvironment -> DefendedEnvironment) fresh for every attempt,
// resumes from the campaign's own v3 checkpoint when one exists, and
// classifies TrainGuarded's exit status:
//
//   OK                   -> done
//   kCancelled + fleet stop flag -> checkpointed (graceful shutdown;
//                           resumable — `fleet --resume` reschedules it)
//   kCancelled + watchdog abort  -> bounded restart from the checkpoint
//                           (decorrelated-jitter backoff), then
//                           quarantine once the restart budget is spent
//   kResourceExhausted   -> quarantine immediately (pool exhausted is
//   kFailedPrecondition     deterministic — a restart replays the same
//                           ban/rollback stream; the circuit breaker
//                           isolates the campaign instead of burning
//                           restarts)
//   abort with allow_restart=false (deadline) -> quarantine
//   anything else        -> restart if budget remains, else failed
//
// Every transition is journaled (orch/journal.h) before the supervisor
// moves on, and committed steps are journaled from the attacker's
// step-commit callback — strictly after the step's checkpoint is
// durable.
#ifndef POISONREC_ORCH_SUPERVISOR_H_
#define POISONREC_ORCH_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "data/dataset.h"
#include "orch/journal.h"
#include "orch/spec.h"
#include "util/cancel.h"
#include "util/retry.h"

namespace poisonrec::orch {

struct SupervisorOptions {
  /// Directory holding one `<campaign id>.ckpt` per campaign.
  std::string checkpoint_dir = "checkpoints";
  /// Journal for lifecycle records; nullptr journals nothing (tests).
  FleetJournal* journal = nullptr;
  /// Fleet-wide graceful-shutdown flag (soft stop at step boundaries);
  /// nullptr when the campaign runs standalone. Not owned.
  const std::atomic<bool>* fleet_stop = nullptr;
  /// Replayed journal state for `fleet --resume` (terminal campaigns are
  /// not re-run; unfinished ones resume from their checkpoint).
  std::optional<CampaignReplay> replay;
  /// Test seam: how the campaign's per-query retry backoffs sleep
  /// ({} = really sleep, interruptible by the supervisor's cancel token).
  SleepFn retry_sleep;
  /// Test seam: how restart backoffs sleep ({} = really sleep).
  SleepFn restart_sleep;
};

/// Final (or recovered) state of one supervised campaign.
struct CampaignOutcome {
  std::string id;
  CampaignState state = CampaignState::kFailed;
  std::uint64_t steps_completed = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  double best_reward = 0.0;
  double wall_seconds = 0.0;
  std::string detail;
  /// Committed (checkpoint-durable) mean reward per step, including
  /// steps recovered from a replayed journal.
  std::map<std::uint64_t, double> step_rewards;
  /// True when the outcome was recovered from the journal without
  /// re-running (terminal state before this process started).
  bool recovered_from_journal = false;
  /// True when the campaign was interrupted by a fleet shutdown and is
  /// resumable from its checkpoint.
  bool interrupted = false;
};

class CampaignSupervisor {
 public:
  /// `dataset` (the shared clean log) must outlive the supervisor.
  CampaignSupervisor(const CampaignSpec& spec, const data::Dataset* dataset,
                     SupervisorOptions options);

  /// Runs the campaign to a terminal or resumable state. Call once.
  CampaignOutcome Run();

  // -- Watchdog interface (thread-safe; orch/fleet.h) -----------------------

  /// Hard-cancels the running attempt. allow_restart=true (stall) lets
  /// the restart budget apply; false (deadline exceeded) quarantines.
  void Abort(const std::string& reason, bool allow_restart);

  /// True while Run is between its first and last journal record.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Seconds since the attacker last signalled liveness (heartbeats fire
  /// at step entry and after each phase).
  double SecondsSinceHeartbeat() const;

  /// Seconds since Run started (spans restarts).
  double SecondsSinceStart() const;

  const CampaignSpec& spec() const { return spec_; }
  std::string CheckpointPath() const;

 private:
  /// One attempt: build the stack, resume from checkpoint, TrainGuarded.
  Status RunAttempt(CampaignOutcome* outcome);
  void Journal(CampaignState state, std::uint64_t step, double reward,
               double best_reward, std::uint64_t restarts,
               const std::string& detail);
  std::string TakeAbortReason();
  /// Restart backoff honouring the fleet stop flag.
  void SleepForRestart(double seconds);

  CampaignSpec spec_;
  const data::Dataset* dataset_;
  SupervisorOptions options_;
  CancelToken cancel_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> start_ticks_{0};
  std::atomic<std::uint64_t> heartbeat_ticks_{0};
  std::atomic<bool> abort_allow_restart_{true};
  mutable std::mutex mu_;
  std::string abort_reason_;
};

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_SUPERVISOR_H_
