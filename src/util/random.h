// Deterministic random-number utilities. Every stochastic component in the
// library takes an explicit seed via Rng so that experiments reproduce.
#ifndef POISONREC_UTIL_RANDOM_H_
#define POISONREC_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace poisonrec {

/// Seeded pseudo-random generator with the sampling primitives the library
/// needs (uniform, normal, categorical, Zipf, sampling without
/// replacement). Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    POISONREC_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t Index(std::size_t n) {
    POISONREC_CHECK_GT(n, 0u);
    return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Standard normal sample scaled to N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli(p) draw.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples an index proportionally to the (non-negative) weights.
  /// At least one weight must be positive.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Samples an index from unnormalized log-weights (numerically stable
  /// softmax sampling).
  std::size_t CategoricalFromLogits(const std::vector<double>& logits);

  /// Samples `k` distinct indices uniformly from [0, n). Floyd's
  /// algorithm; O(k) expected. Result order is unspecified.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  /// Draws from a Zipf distribution over ranks {0, ..., n-1}:
  /// P(rank = r) ∝ 1 / (r + 1)^exponent. Inverse-CDF over a precomputed
  /// table is the caller's job for bulk draws; this is the direct form.
  std::size_t Zipf(std::size_t n, double exponent);

  std::mt19937_64& engine() { return engine_; }

  /// Derives an independent child seed (for spawning per-component Rngs).
  std::uint64_t Fork() { return engine_(); }

  /// Engine state as a portable text blob (for crash-safe checkpoints).
  /// Restoring it reproduces the exact draw sequence bit-for-bit.
  std::string SerializeState() const;

  /// Restores a state produced by SerializeState.
  Status DeserializeState(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer: a bijective avalanche mix (Steele et al.,
/// "Fast splittable pseudorandom number generators").
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Derives the seed of child stream `index` within stream family
/// `stream` of a root `seed`, as a pure function of its arguments: no
/// generator state is consumed, so any subset of child streams can be
/// created in any order (or in parallel) and the result is identical.
/// Used to give every episode rollout of a train step its own Rng —
/// child m of step s is Rng(DeriveStreamSeed(seed, s, m)) — which makes
/// parallel sampling deterministic and checkpoint/resume exact: the
/// derivation state is just (seed, step).
inline std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream,
                                      std::uint64_t index) {
  return SplitMix64(SplitMix64(seed ^ SplitMix64(stream)) + index);
}

/// Precomputed cumulative table for repeated Zipf draws over a fixed
/// support size. P(rank = r) ∝ 1/(r+1)^exponent.
class ZipfTable {
 public:
  ZipfTable(std::size_t n, double exponent);

  std::size_t Sample(Rng* rng) const;
  std::size_t size() const { return cdf_.size(); }
  /// Probability mass of rank r.
  double Pmf(std::size_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace poisonrec

#endif  // POISONREC_UTIL_RANDOM_H_
