// Crash-durable fleet journal: the orchestrator's write-ahead record of
// every campaign's lifecycle, one JSONL line per transition, backed by
// obs::EventLog (O_APPEND single-write appends — everything up to the
// last completed append survives kill -9, and appends from multiple
// `fleet --shared` worker processes never interleave mid-line).
//
// State machine per campaign:
//
//   pending ──> running ──> checkpointed ──> ... ──> done
//                  │  ▲           │                   (terminal)
//                  │  │           └──(more steps)──┐
//                  │  │                            │
//                  │  └── preempted (resumable: a higher-priority
//                  │       campaign needed the worker; the victim
//                  │       checkpointed at its step boundary and is
//                  │       re-queued — orch/fleet.h priority preemption)
//                  │
//                  ├──> quarantined (terminal: circuit breaker — stalls
//                  │                 past the restart budget, deadline
//                  │                 exceeded, pool exhausted, rollback
//                  │                 budget exhausted)
//                  └──> failed      (terminal: unexpected error)
//
// `checkpointed` records are appended from the attacker's step-commit
// callback, i.e. strictly after the campaign checkpoint for that step
// is durable on disk — the journal never claims progress the checkpoint
// doesn't have. Each carries (step, reward), so replay can reconstruct
// the committed reward sequence and `fleet --resume` can verify
// bit-identical recovery.
//
// Fencing: every record carries the writer's lease token and owner id
// (orch/lease.h; token 0 = single-process fleet, no leases). In shared
// fleets each worker appends to its own `<stem>.<worker>.jsonl` next to
// the configured journal path, and Replay() merges every sibling file.
//
// Replay folds the merged stream per campaign id with token-aware
// last-writer-wins: the campaign's authoritative state comes from its
// highest-token records (a fenced-out zombie's stale-token writes are
// counted in `stale_records` and cannot override the new owner); step
// rewards dedup by step index with the higher token winning the step
// (rewards are deterministic, so epochs agree where they overlap); a
// torn trailing line per file (the crash frontier) is tolerated, while
// malformed interior lines are counted in `malformed_lines` and
// surfaced in the fleet report instead of silently skipped.
#ifndef POISONREC_ORCH_JOURNAL_H_
#define POISONREC_ORCH_JOURNAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "util/status.h"

namespace poisonrec::orch {

enum class CampaignState : std::uint8_t {
  kPending = 0,
  kRunning = 1,
  /// Progress committed: the campaign checkpoint holds `step` steps.
  kCheckpointed = 2,
  /// Terminal: budget completed.
  kDone = 3,
  /// Terminal: the circuit breaker isolated a persistently failing
  /// campaign (stall/deadline/pool exhaustion/rollback budget) so it
  /// cannot sink the rest of the fleet.
  kQuarantined = 4,
  /// Terminal: unexpected error (orchestrator bug, I/O failure).
  kFailed = 5,
  /// Resumable: soft-stopped at a step boundary to hand its worker to a
  /// higher-priority campaign; re-queued by the scheduler.
  kPreempted = 6,
};

/// Stable snake_case name used in journal lines and reports.
const char* CampaignStateName(CampaignState state);
StatusOr<CampaignState> ParseCampaignState(const std::string& name);
/// done/quarantined/failed — states a resume must not re-run.
bool IsTerminal(CampaignState state);

/// One journal line.
struct CampaignJournalRecord {
  std::string campaign_id;
  CampaignState state = CampaignState::kPending;
  /// Steps committed to the campaign checkpoint so far.
  std::uint64_t step = 0;
  /// Mean reward of the step being committed (checkpointed records).
  double reward = 0.0;
  double best_reward = 0.0;
  std::uint64_t restarts = 0;
  /// Fencing token of the writer's campaign lease (0 = no lease).
  std::uint64_t token = 0;
  /// Worker id of the writer ("" = single-process fleet).
  std::string owner;
  std::string detail;
};

/// Folded per-campaign view of a replayed journal.
struct CampaignReplay {
  CampaignState state = CampaignState::kPending;
  std::uint64_t steps_completed = 0;
  std::uint64_t restarts = 0;
  double best_reward = 0.0;
  /// Highest fencing token seen for the campaign: the authoritative
  /// ownership epoch. A resuming owner must acquire a token above it.
  std::uint64_t token = 0;
  std::string detail;
  /// step index -> committed mean reward, deduped (higher token wins a
  /// step; within an epoch the last record wins).
  std::map<std::uint64_t, double> step_rewards;
};

/// Result of merging one or more journal files.
struct JournalReplayResult {
  std::map<std::string, CampaignReplay> campaigns;
  /// Malformed lines in a file's interior — real corruption, surfaced
  /// in the fleet report (a torn FINAL line per file is expected after
  /// kill -9 and counted separately).
  std::uint64_t malformed_lines = 0;
  std::uint64_t torn_tail_lines = 0;
  /// Interior lines that still parse as JSON but fail their CRC32C
  /// line checksum (obs/crc32c.h framing) — bit rot that structural
  /// validation alone would have trusted. Skipped like malformed
  /// lines and surfaced separately in the fleet report.
  std::uint64_t corrupt_lines = 0;
  /// Records whose token was below the campaign's winning epoch —
  /// writes from fenced-out (seized) owners, rejected by replay.
  std::uint64_t stale_records = 0;
  std::size_t files_merged = 0;
};

/// Append side. Thread-safe: concurrent Record calls serialize on the
/// underlying EventLog's per-line mutex; cross-process appends rely on
/// the EventLog O_APPEND single-write contract.
class FleetJournal {
 public:
  /// Opens the journal. truncate=false (resume / shared workers)
  /// appends to the existing log so the recovery history stays in one
  /// file.
  Status Open(const std::string& path, bool truncate);

  /// Appends one record (no-op returning false when closed).
  bool Record(const CampaignJournalRecord& record);

  void Close() { log_.Close(); }
  bool is_open() const { return log_.is_open(); }
  const std::string& path() const { return log_.path(); }
  std::uint64_t records_written() const { return log_.lines_written(); }

  /// Sibling journal files of `base_path`: every `<stem>*<ext>` in its
  /// directory (the base file plus per-worker `<stem>.<worker><ext>`
  /// files), sorted by name for deterministic merge order. Missing
  /// files simply yield an empty list.
  static std::vector<std::string> ListJournalFiles(
      const std::string& base_path);

  /// Merges `paths` into per-campaign folded state (see the header
  /// comment for the token-aware fold rules). Unreadable files are an
  /// error; unknown record types are ignored.
  static StatusOr<JournalReplayResult> Replay(
      const std::vector<std::string>& paths);

  /// Single-file convenience wrapper around Replay (legacy signature).
  static StatusOr<std::map<std::string, CampaignReplay>> ReplayFile(
      const std::string& path);

 private:
  obs::EventLog log_;
};

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_JOURNAL_H_
