// Guardrail overhead harness: the stability monitors (util/guard.h) sweep
// rewards, logits, loss, gradients, parameters, and Adam moments every
// training step, so their cost must stay a small fraction of the step
// itself. Runs two identically-seeded attackers on Steam — guard off vs
// guard on with generous thresholds (nothing trips) — and compares mean
// per-step wall-clock. Acceptance: overhead under 5%. Both runs must find
// the same best RecNum, confirming the monitors are observe-only.
#include <cstdio>

#include "bench/common.h"
#include "core/ppo.h"

namespace poisonrec::bench {
namespace {

struct RunResult {
  double total_seconds = 0.0;
  double mean_step_seconds = 0.0;
  double best_recnum = 0.0;
};

RunResult RunOne(const BenchConfig& config, const std::string& ranker,
                 bool guard) {
  auto environment =
      MakeEnvironment(config, data::DatasetPreset::kSteam, ranker);
  core::PoisonRecConfig pr = MakePoisonRecConfig(
      config, core::ActionSpaceKind::kBcbtPopular, config.seed ^ 0x6172u);
  if (guard) {
    pr.guard.enabled = true;
    // Generous thresholds: measure the sweeps, not rollback handling.
    pr.guard.grad_norm_threshold = 1e12;
    pr.guard.entropy_floor = 0.0;
    pr.guard.approx_kl_threshold = 1e12;
  }
  core::PoisonRecAttacker attacker(environment.get(), pr);
  const auto stats = attacker.Train(config.training_steps);

  RunResult result;
  for (const auto& s : stats) result.total_seconds += s.seconds;
  result.mean_step_seconds =
      stats.empty() ? 0.0 : result.total_seconds / stats.size();
  result.best_recnum = attacker.best_episode().reward;
  return result;
}

void Run() {
  BenchConfig config = LoadBenchConfig();
  const std::string ranker =
      config.rankers.empty() ? "ItemPop" : config.rankers.front();
  std::printf(
      "== Guardrail overhead: monitors on vs off (%s on Steam, scale=%.3g) "
      "==\n\n",
      ranker.c_str(), config.scale);

  // Warm-up run so neither timed run pays first-touch costs, then
  // alternate the two modes and keep each mode's fastest repetition:
  // the minimum is robust against scheduler noise, which at bench scale
  // is larger than the effect being measured.
  (void)RunOne(config, ranker, false);
  RunResult off;
  RunResult on;
  for (int rep = 0; rep < 3; ++rep) {
    const RunResult off_rep = RunOne(config, ranker, false);
    const RunResult on_rep = RunOne(config, ranker, true);
    if (rep == 0 || off_rep.mean_step_seconds < off.mean_step_seconds) {
      off = off_rep;
    }
    if (rep == 0 || on_rep.mean_step_seconds < on.mean_step_seconds) {
      on = on_rep;
    }
  }

  const double overhead_pct =
      off.mean_step_seconds > 0.0
          ? (on.mean_step_seconds / off.mean_step_seconds - 1.0) * 100.0
          : 0.0;

  PrintTableHeader({"mode", "steps", "mean_s", "total_s", "RecNum"});
  char buffer[32];
  std::vector<std::vector<std::string>> rows;
  rows.push_back(
      {"mode", "steps", "mean_step_seconds", "total_seconds", "best_recnum",
       "overhead_pct"});
  const RunResult* results[] = {&off, &on};
  const char* names[] = {"guard_off", "guard_on"};
  for (int i = 0; i < 2; ++i) {
    std::snprintf(buffer, sizeof(buffer), "%.6f",
                  results[i]->mean_step_seconds);
    const std::string mean_s = buffer;
    std::snprintf(buffer, sizeof(buffer), "%.4f", results[i]->total_seconds);
    const std::string total_s = buffer;
    std::snprintf(buffer, sizeof(buffer), "%.2f", i == 0 ? 0.0 : overhead_pct);
    PrintTableRow({names[i], std::to_string(config.training_steps), mean_s,
                   total_s, FormatCount(results[i]->best_recnum)});
    rows.push_back({names[i], std::to_string(config.training_steps), mean_s,
                    total_s, FormatCount(results[i]->best_recnum), buffer});
  }
  std::printf("\nguard overhead: %.2f%% per step (%s identical results)\n",
              overhead_pct,
              off.best_recnum == on.best_recnum ? "with" : "WITHOUT");
  WriteJsonOutput(config, "guardrail_overhead.json", rows);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
