// GRU4Rec (Hidasi et al., ICLR'16): session-based next-item prediction.
// A GRU consumes the user's behavior sequence through item embeddings; the
// hidden state scores items by dot product with their embeddings. Trained
// with sampled-softmax cross-entropy (positive next item vs sampled
// negatives). This ranker is order-sensitive — the property that makes
// sequential attacks (alternating clicks) effective in the paper.
#ifndef POISONREC_REC_GRU4REC_H_
#define POISONREC_REC_GRU4REC_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "rec/factor_model.h"
#include "rec/recommender.h"

namespace poisonrec::rec {

class Gru4Rec : public Recommender {
 public:
  explicit Gru4Rec(const FitConfig& config = FitConfig());
  Gru4Rec(const Gru4Rec& other);
  Gru4Rec& operator=(const Gru4Rec&) = delete;

  std::string Name() const override { return "GRU4Rec"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

  /// The item embedding table (used for strategy visualization).
  const nn::Tensor& ItemEmbeddings() const;

 private:
  struct Net {
    Net(std::size_t num_items, std::size_t dim, Rng* rng);
    std::vector<nn::Tensor> Parameters() const;
    nn::Embedding items;
    nn::GruCell gru;
  };

  /// Hidden state after consuming `sequence` (truncated to the configured
  /// maximum length; empty sequence -> zero state).
  nn::Tensor Encode(const std::vector<data::ItemId>& sequence) const;

  void TrainEpochs(const std::vector<std::vector<data::ItemId>>& sequences,
                   std::size_t epochs, Rng* rng);

  FitConfig config_;
  std::size_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  std::vector<std::vector<data::ItemId>> history_;  // per user, from Fit
  std::vector<std::vector<data::ItemId>> clean_sequences_;  // replay pool
  std::uint64_t update_seed_ = 0;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_GRU4REC_H_
