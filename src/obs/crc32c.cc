#include "obs/crc32c.h"

#include <array>

namespace poisonrec::obs {

namespace {

/// Slice-by-1 table for the Castagnoli polynomial (reflected 0x82f63b78).
/// Software only: fast enough for line framing and checkpoint footers
/// (the payloads are small next to the fsyncs that dominate those
/// paths), and bit-identical everywhere — no SSE4.2 dispatch to vary by
/// host.
std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82f63b78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = MakeTable();
  return table;
}

constexpr std::string_view kCrcKey = "\"crc\":\"";
constexpr std::size_t kCrcHexDigits = 8;

void AppendHex8(std::uint32_t value, std::string* out) {
  static const char kHex[] = "0123456789abcdef";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out->push_back(kHex[(value >> shift) & 0xfu]);
  }
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xffu];
  }
  return ~crc;
}

std::string WithLineChecksum(std::string line) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return line;
  }
  // CRC over the line as it reads without the crc member.
  const std::uint32_t crc = Crc32c(line);
  line.pop_back();  // drop '}'
  if (line.size() > 1) line.push_back(',');  // `{}` needs no separator
  line.append(kCrcKey);
  AppendHex8(crc, &line);
  line.push_back('"');
  line.push_back('}');
  return line;
}

LineChecksum VerifyLineChecksum(std::string_view line) {
  // The member is always spliced last, so it sits at a fixed offset
  // from the end: `…,"crc":"xxxxxxxx"}` (or `{"crc":"…"}` for the empty
  // object). Anchoring at the tail also means a crc-shaped substring
  // elsewhere in the line cannot confuse the verifier.
  const std::size_t tail = kCrcKey.size() + kCrcHexDigits + 2;  // "crc":"…"}
  if (line.size() < tail + 1 || line.front() != '{' || line.back() != '}') {
    return LineChecksum::kAbsent;
  }
  const std::size_t key_pos = line.size() - tail;
  if (line.compare(key_pos, kCrcKey.size(), kCrcKey) != 0 ||
      line[line.size() - 2] != '"') {
    return LineChecksum::kAbsent;
  }
  const char sep = line[key_pos - 1];
  if (sep != ',' && sep != '{') return LineChecksum::kAbsent;
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < kCrcHexDigits; ++i) {
    const char c = line[key_pos + kCrcKey.size() + i];
    std::uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      // Rot inside the hex digits themselves: the member shape is
      // unmistakably a checksum, so report a mismatch rather than
      // silently downgrading the line to "legacy, unchecked".
      return LineChecksum::kMismatch;
    }
    stored = (stored << 4) | digit;
  }
  // Recompute over the line with the member (and its separator comma)
  // removed — exactly what WithLineChecksum hashed.
  const std::size_t cut = sep == ',' ? key_pos - 1 : key_pos;
  std::uint32_t crc = Crc32c(line.substr(0, cut));
  crc = Crc32c("}", 1, crc);
  return crc == stored ? LineChecksum::kVerified : LineChecksum::kMismatch;
}

}  // namespace poisonrec::obs
