// The Ranker abstraction (paper §III-A1). A recommender fits on an
// implicit-feedback log, can be cloned and incrementally updated with a
// poison log (Algorithm 1's DataPoisoning reloads the pretrained ranker
// and updates it with D^p), and scores candidate items for a user.
#ifndef POISONREC_REC_RECOMMENDER_H_
#define POISONREC_REC_RECOMMENDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace poisonrec::rec {

/// Hyperparameters shared across rankers. Individual models ignore the
/// fields that do not apply to them.
struct FitConfig {
  /// Latent/embedding dimension.
  std::size_t embedding_dim = 16;
  /// Epochs over the log for pretraining (Fit).
  std::size_t epochs = 5;
  /// Epochs over the poison log for incremental updates (Update).
  std::size_t update_epochs = 3;
  float learning_rate = 0.05f;
  float weight_decay = 1e-4f;
  /// Negative samples per observed positive (models with sampled losses).
  std::size_t negatives_per_positive = 2;
  /// Truncation for sequence models.
  std::size_t max_sequence_length = 30;
  /// Mini-batch size for the neural models.
  std::size_t batch_size = 64;
  /// Propagation depth for graph models (NGCF).
  std::size_t num_layers = 2;
  /// When the parametric models are incrementally updated with a poison
  /// log, each update epoch also replays `update_replay_ratio` x as many
  /// clean interactions sampled from the training log. This models a
  /// production system that keeps training on its full log (which now
  /// contains the poison) instead of on the poison alone — without it,
  /// a handful of fake clicks catastrophically overwrite the model.
  /// Count-based models (ItemPop, CoVisitation) are exact and ignore it.
  double update_replay_ratio = 4.0;
  std::uint64_t seed = 7;
};

/// Abstract ranker. Implementations must be deterministic given the seed
/// in their FitConfig.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Canonical algorithm name ("ItemPop", "BPR", ...).
  virtual std::string Name() const = 0;

  /// Trains from scratch on `dataset`. The dataset's capacities define the
  /// user/item id spaces (including cold target items and empty attacker
  /// slots).
  virtual void Fit(const data::Dataset& dataset) = 0;

  /// Incrementally updates the fitted model with additional (poison)
  /// interactions. `poison` must share the capacities of the fit dataset.
  virtual void Update(const data::Dataset& poison) = 0;

  /// Preference scores for `candidates`, one per candidate, higher =
  /// more preferred.
  virtual std::vector<double> Score(
      data::UserId user, const std::vector<data::ItemId>& candidates) const = 0;

  /// Deep copy (model parameters + any cached state).
  virtual std::unique_ptr<Recommender> Clone() const = 0;

  /// Top-k of the candidate set by score (descending; deterministic ties).
  std::vector<data::ItemId> RecommendTopK(
      data::UserId user, const std::vector<data::ItemId>& candidates,
      std::size_t k) const;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_RECOMMENDER_H_
