// Tests for the src/obs telemetry subsystem: JSON fragment writer,
// metrics registry (counters/gauges/histograms), trace spans + Chrome
// trace export, and the structured event log.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace poisonrec {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// JSON helpers

TEST(JsonTest, EscapesStrings) {
  std::string out;
  obs::AppendJsonString(&out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonTest, NumbersRoundTripAndNonFiniteBecomeStrings) {
  std::string out;
  obs::AppendJsonNumber(&out, 0.5);
  EXPECT_EQ(out, "0.5");
  out.clear();
  obs::AppendJsonNumber(&out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "\"nan\"");
  out.clear();
  obs::AppendJsonNumber(&out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "\"inf\"");
  out.clear();
  obs::AppendJsonNumber(&out, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "\"-inf\"");
  out.clear();
  obs::AppendJsonNumber(&out, std::uint64_t{18446744073709551615ull});
  EXPECT_EQ(out, "18446744073709551615");
}

TEST(JsonTest, NumberLiteralDetection) {
  EXPECT_TRUE(obs::IsJsonNumberLiteral("42"));
  EXPECT_TRUE(obs::IsJsonNumberLiteral("-1.5e3"));
  EXPECT_FALSE(obs::IsJsonNumberLiteral(""));
  EXPECT_FALSE(obs::IsJsonNumberLiteral("12abc"));
  EXPECT_FALSE(obs::IsJsonNumberLiteral("nan"));
  EXPECT_FALSE(obs::IsJsonNumberLiteral("inf"));
}

TEST(JsonTest, ObjectBuilderProducesOneObject) {
  const std::string json = std::move(obs::JsonObjectBuilder()
                                         .Str("type", "step")
                                         .Int("step", 7)
                                         .Num("reward", 0.25)
                                         .Bool("ok", true)
                                         .Raw("list", "[1,2]"))
                               .Finish();
  EXPECT_EQ(json,
            "{\"type\":\"step\",\"step\":7,\"reward\":0.25,"
            "\"ok\":true,\"list\":[1,2]}");
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsTest, CounterGaugeBasics) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("obs_test_counter_basic");
  EXPECT_EQ(reg.GetCounter("obs_test_counter_basic"), c);  // stable pointer
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);

  obs::Gauge* g = reg.GetGauge("obs_test_gauge_basic");
  g->Set(1.5);
  g->Add(-0.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.0);
}

TEST(MetricsTest, ConcurrentCounterIncrementsFromParallelForWorkers) {
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("obs_test_counter_parallel");
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  ParallelFor(kTasks, /*num_threads=*/8, [&](std::size_t) {
    for (std::size_t i = 0; i < kPerTask; ++i) c->Increment();
  });
  EXPECT_EQ(c->Value(), kTasks * kPerTask);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  using H = obs::Histogram;
  // 1.0 == 2^0 sits in bucket -kMinExponent, whose bounds are [1, 2).
  const std::size_t one = static_cast<std::size_t>(-H::kMinExponent);
  EXPECT_EQ(H::BucketIndex(1.0), one);
  EXPECT_DOUBLE_EQ(H::BucketLowerBound(one), 1.0);
  EXPECT_DOUBLE_EQ(H::BucketUpperBound(one), 2.0);
  EXPECT_EQ(H::BucketIndex(1.999), one);
  EXPECT_EQ(H::BucketIndex(2.0), one + 1);  // boundary is exclusive above
  EXPECT_EQ(H::BucketIndex(0.5), one - 1);

  // Bucket 0 absorbs zero, negatives, NaN, and underflow.
  EXPECT_EQ(H::BucketIndex(0.0), 0u);
  EXPECT_EQ(H::BucketIndex(-3.0), 0u);
  EXPECT_EQ(H::BucketIndex(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(H::BucketIndex(std::ldexp(1.0, H::kMinExponent - 5)), 0u);
  EXPECT_DOUBLE_EQ(H::BucketLowerBound(0), 0.0);

  // The top bucket clamps overflow and +inf; its upper bound is +inf.
  EXPECT_EQ(H::BucketIndex(1e300), H::kNumBuckets - 1);
  EXPECT_EQ(H::BucketIndex(std::numeric_limits<double>::infinity()),
            H::kNumBuckets - 1);
  EXPECT_TRUE(std::isinf(H::BucketUpperBound(H::kNumBuckets - 1)));

  // Every interior boundary is exact: lower(i+1) == upper(i).
  for (std::size_t i = 1; i + 1 < H::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(H::BucketUpperBound(i), H::BucketLowerBound(i + 1));
  }
}

TEST(MetricsTest, HistogramSnapshot) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test_hist_snapshot");
  h->Observe(1.5);
  h->Observe(3.0);
  h->Observe(0.25);
  const obs::Histogram::Snapshot snap = h->TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 4.75);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  EXPECT_EQ(snap.buckets[obs::Histogram::BucketIndex(1.5)], 1u);
  EXPECT_EQ(snap.buckets[obs::Histogram::BucketIndex(3.0)], 1u);
  EXPECT_EQ(snap.buckets[obs::Histogram::BucketIndex(0.25)], 1u);
}

TEST(MetricsTest, SnapshotQuantilesAreExactOnKnownDistributions) {
  using H = obs::Histogram;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();

  // Two point masses in adjacent buckets: every quantile at or past the
  // first mass's cumulative weight lands exactly on the second value,
  // because interpolation bounds clamp to the observed [min, max].
  H* two = reg.GetHistogram("obs_test_quantile_two_masses");
  for (int i = 0; i < 10; ++i) two->Observe(1.0);
  for (int i = 0; i < 10; ++i) two->Observe(2.0);
  const H::Snapshot two_snap = two->TakeSnapshot();
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(two_snap, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(two_snap, 0.95), 2.0);
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(two_snap, 0.99), 2.0);
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(two_snap, 0.25), 1.5);
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(two_snap, 0.0), 1.0);   // min
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(two_snap, 1.0), 2.0);   // max

  // A single repeated value is exact at every quantile: its bucket
  // collapses to [4, 4] after the min/max clamp.
  H* single = reg.GetHistogram("obs_test_quantile_single_value");
  for (int i = 0; i < 100; ++i) single->Observe(4.0);
  const H::Snapshot single_snap = single->TakeSnapshot();
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(single_snap, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(single_snap, 0.95), 4.0);
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(single_snap, 0.99), 4.0);

  // Two values sharing one log2 bucket ([8, 16)): interpolation runs
  // over the clamped range [8, 12], so p50 is its midpoint.
  H* shared = reg.GetHistogram("obs_test_quantile_shared_bucket");
  shared->Observe(8.0);
  shared->Observe(12.0);
  const H::Snapshot shared_snap = shared->TakeSnapshot();
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(shared_snap, 0.5), 10.0);

  // Empty histograms report 0 rather than an arbitrary bound.
  const H::Snapshot empty_snap =
      reg.GetHistogram("obs_test_quantile_empty")->TakeSnapshot();
  EXPECT_DOUBLE_EQ(H::SnapshotQuantile(empty_snap, 0.5), 0.0);
}

TEST(MetricsTest, SnapshotsCarryDerivedQuantilesAndTimestamps) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Histogram* h = reg.GetHistogram("obs_test_quantile_export");
  for (int i = 0; i < 100; ++i) h->Observe(4.0);

  const std::string json = reg.SnapshotJson();
  // Both clocks are exported: wall_unix (cross-process comparable; the
  // field fleet status aggregation trusts) and steady-clock uptime.
  EXPECT_EQ(json.rfind("{\"wall_unix\":", 0), 0u);
  EXPECT_NE(json.find("\"uptime_seconds\":"), std::string::npos);
  const double wall = std::atof(json.c_str() + json.find(':') + 1);
  EXPECT_GT(wall, 1.5e9);  // a plausible unix epoch, not an uptime
  EXPECT_NE(json.find("\"obs_test_quantile_export\":{\"count\":100,"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":4,\"p95\":4,\"p99\":4"), std::string::npos);

  const std::string text = reg.SnapshotText();
  EXPECT_EQ(text.rfind("poisonrec_export_wall_unix ", 0), 0u);
  EXPECT_NE(text.find("poisonrec_export_uptime_seconds "),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_quantile_export_p50 4"), std::string::npos);
  EXPECT_NE(text.find("obs_test_quantile_export_p95 4"), std::string::npos);
  EXPECT_NE(text.find("obs_test_quantile_export_p99 4"), std::string::npos);
}

TEST(MetricsTest, SnapshotJsonContainsRegisteredMetrics) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_test_snap_counter")->Increment(5);
  reg.GetGauge("obs_test_snap_gauge")->Set(2.5);
  reg.GetHistogram("obs_test_snap_hist")->Observe(1.0);

  const std::string json = reg.SnapshotJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_snap_counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_snap_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_snap_hist\":{\"count\":1"),
            std::string::npos);
  // Histogram bucket entries carry explicit bounds.
  EXPECT_NE(json.find("\"buckets\":[{\"ge\":1,\"lt\":2,\"count\":1}]"),
            std::string::npos);

  const std::string text = reg.SnapshotText();
  EXPECT_NE(text.find("obs_test_snap_counter 5"), std::string::npos);
}

TEST(MetricsTest, WriteJsonRoundTripsToFile) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_test_write_counter")->Increment();
  const std::string path = TempPath("poisonrec_obs_metrics.json");
  ASSERT_TRUE(reg.WriteJson(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  // The snapshot header timestamps (wall_unix / uptime_seconds) differ
  // between two captures; the metric payload after them must not.
  const auto payload = [](const std::string& json) {
    const std::size_t at = json.find("\"counters\":");
    return at == std::string::npos ? json : json.substr(at);
  };
  EXPECT_NE(contents.find("{\"wall_unix\":"), std::string::npos);
  EXPECT_EQ(payload(contents), payload(reg.SnapshotJson() + "\n"));
  std::remove(path.c_str());
  EXPECT_FALSE(reg.WriteJson("/nonexistent-dir/metrics.json"));
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(TraceTest, DisabledTracingRecordsNothingButStillTimes) {
  obs::SetTracingEnabled(false);
  obs::ClearTrace();
  const std::size_t before = obs::TraceEventCount();
  obs::TraceSpan span("obs_test/disabled");
  // Burn a little time so the duration is observably positive.
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  const double seconds = span.Stop();
  EXPECT_GT(seconds, 0.0);
  EXPECT_DOUBLE_EQ(span.Stop(), seconds);  // idempotent
  EXPECT_EQ(obs::TraceEventCount(), before);
}

TEST(TraceTest, SpansRecordWhenEnabledAndNestInExport) {
  obs::SetTracingEnabled(true);
  obs::ClearTrace();
  // Put >1µs between the two span starts so their "ts" values differ
  // at the export's microsecond resolution and the ordering assertion
  // below cannot tie-break arbitrarily.
  const auto spin_us = [](int us) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(us);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  {
    POISONREC_TRACE_SPAN("obs_test/outer");
    spin_us(100);
    {
      POISONREC_TRACE_SPAN("obs_test/inner");
      spin_us(100);
    }
  }
  obs::SetTracingEnabled(false);
  EXPECT_EQ(obs::TraceEventCount(), 2u);

  const std::string json = obs::ChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  const std::size_t outer = json.find("\"obs_test/outer\"");
  const std::size_t inner = json.find("\"obs_test/inner\"");
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(inner, std::string::npos);
  // Export order puts the enclosing span before its child (ts asc,
  // dur desc) so trace viewers nest them correctly.
  EXPECT_LT(outer, inner);
  // Complete events with microsecond timestamps on one process.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(TraceTest, SpanArgsExportAsCampaignArgsAndTruncate) {
  obs::SetTracingEnabled(true);
  obs::ClearTrace();
  {
    // Dynamic storage: arg only has to outlive Stop() — the ring keeps
    // a copy, unlike the name pointer.
    const std::string campaign = "camp-42";
    obs::TraceSpan span("obs_test/with_arg", campaign.c_str());
  }
  { obs::TraceSpan span("obs_test/without_arg"); }
  {
    const std::string oversized(obs::kTraceArgCapacity + 20, 'x');
    obs::TraceSpan span("obs_test/truncated_arg", oversized.c_str());
  }
  obs::SetTracingEnabled(false);

  const std::string json = obs::ChromeTraceJson();
  EXPECT_NE(json.find("\"args\":{\"campaign\":\"camp-42\"}"),
            std::string::npos);
  // The arg-less span's event object (no nested braces) carries no args.
  const std::size_t without = json.find("\"obs_test/without_arg\"");
  ASSERT_NE(without, std::string::npos);
  const std::string event =
      json.substr(without, json.find('}', without) - without);
  EXPECT_EQ(event.find("args"), std::string::npos);
  // Oversized args are truncated to kTraceArgCapacity - 1 bytes.
  EXPECT_NE(
      json.find("\"campaign\":\"" +
                std::string(obs::kTraceArgCapacity - 1, 'x') + "\""),
      std::string::npos);
  EXPECT_EQ(json.find(std::string(obs::kTraceArgCapacity, 'x')),
            std::string::npos);
  obs::ClearTrace();
}

// Extracts the integer value of `"key":` immediately following the event
// whose name match starts at `from`.
std::uint64_t FieldAfter(const std::string& json, std::size_t from,
                         const std::string& key) {
  const std::size_t pos = json.find("\"" + key + "\":", from);
  EXPECT_NE(pos, std::string::npos);
  return std::strtoull(json.c_str() + pos + key.size() + 3, nullptr, 10);
}

TEST(TraceTest, ThreadAttribution) {
  obs::SetTracingEnabled(true);
  obs::ClearTrace();
  // Raw threads (not the pool): each must land on its own tid.
  std::thread t1([] { POISONREC_TRACE_SPAN("obs_test/thread_a"); });
  t1.join();
  std::thread t2([] { POISONREC_TRACE_SPAN("obs_test/thread_b"); });
  t2.join();
  obs::SetTracingEnabled(false);

  // Rings outlive their threads: both spans must still be exported.
  const std::string json = obs::ChromeTraceJson();
  const std::size_t a = json.find("\"obs_test/thread_a\"");
  const std::size_t b = json.find("\"obs_test/thread_b\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_NE(FieldAfter(json, a, "tid"), FieldAfter(json, b, "tid"));
}

TEST(TraceTest, RingOverflowDropsOldestAndCounts) {
  obs::ClearTrace();
  obs::SetTraceRingCapacity(16);
  obs::SetTracingEnabled(true);
  // A fresh thread gets a ring with the new (tiny) capacity.
  std::thread t([] {
    for (int i = 0; i < 40; ++i) {
      POISONREC_TRACE_SPAN("obs_test/overflow");
    }
  });
  t.join();
  obs::SetTracingEnabled(false);
  EXPECT_GE(obs::TraceDroppedCount(), 24u);
  obs::SetTraceRingCapacity(std::size_t{1} << 16);
  obs::ClearTrace();
}

TEST(TraceTest, WriteChromeTraceToFile) {
  obs::SetTracingEnabled(true);
  obs::ClearTrace();
  { POISONREC_TRACE_SPAN("obs_test/file"); }
  obs::SetTracingEnabled(false);
  const std::string path = TempPath("poisonrec_obs_trace.json");
  ASSERT_TRUE(obs::WriteChromeTrace(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"obs_test/file\""), std::string::npos);
  std::remove(path.c_str());
  obs::ClearTrace();
}

// ---------------------------------------------------------------------------
// Event log

TEST(EventLogTest, AppendWritesCompleteLinesAndCounts) {
  const std::string path = TempPath("poisonrec_obs_events.jsonl");
  obs::EventLog log;
  EXPECT_FALSE(log.Append("{}"));  // closed log drops events
  ASSERT_TRUE(log.Open(path));
  EXPECT_TRUE(log.is_open());
  EXPECT_TRUE(log.Append("{\"type\":\"a\"}"));
  EXPECT_TRUE(log.Append("{\"type\":\"b\"}"));
  EXPECT_EQ(log.lines_written(), 2u);
  log.Close();
  EXPECT_FALSE(log.is_open());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"type\":\"a\"}");
  EXPECT_EQ(lines[1], "{\"type\":\"b\"}");
  std::remove(path.c_str());
}

TEST(EventLogTest, TruncateVersusAppendMode) {
  const std::string path = TempPath("poisonrec_obs_events_append.jsonl");
  {
    obs::EventLog log;
    ASSERT_TRUE(log.Open(path));
    log.Append("{\"n\":1}");
  }
  {
    obs::EventLog log;
    ASSERT_TRUE(log.Open(path, /*truncate=*/false));
    log.Append("{\"n\":2}");
  }
  EXPECT_EQ(ReadLines(path).size(), 2u);
  {
    obs::EventLog log;
    ASSERT_TRUE(log.Open(path, /*truncate=*/true));
    log.Append("{\"n\":3}");
  }
  EXPECT_EQ(ReadLines(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(EventLogTest, ConcurrentAppendsNeverInterleave) {
  const std::string path = TempPath("poisonrec_obs_events_mt.jsonl");
  obs::EventLog log;
  ASSERT_TRUE(log.Open(path));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string line = std::move(obs::JsonObjectBuilder()
                                               .Int("writer", t)
                                               .Int("seq", i)
                                               .Str("pad", std::string(64, 'x')))
                                     .Finish();
        ASSERT_TRUE(log.Append(line));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  log.Close();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  int per_writer[kThreads] = {};
  for (const std::string& line : lines) {
    // Atomicity: every line is one complete record, never two halves.
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.front(), '{');
    ASSERT_EQ(line.back(), '}');
    ASSERT_EQ(line.find('{', 1), std::string::npos) << line;
    const std::size_t w = line.find("\"writer\":");
    ASSERT_NE(w, std::string::npos);
    const int writer = std::atoi(line.c_str() + w + 9);
    ASSERT_GE(writer, 0);
    ASSERT_LT(writer, kThreads);
    ++per_writer[writer];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_writer[t], kPerThread);
  std::remove(path.c_str());
}

TEST(EventLogTest, CrossInstanceAppendsNeverInterleaveMidLine) {
  // Two EventLog instances with independent fds on ONE path — the
  // in-process stand-in for two `fleet --shared` worker processes
  // appending to a shared journal. The per-instance mutex cannot help
  // across instances; only the O_APPEND single-write() contract keeps
  // lines whole.
  const std::string path = TempPath("poisonrec_obs_events_shared.jsonl");
  obs::EventLog a;
  obs::EventLog b;
  ASSERT_TRUE(a.Open(path, /*truncate=*/true));
  ASSERT_TRUE(b.Open(path, /*truncate=*/false));

  constexpr int kThreadsPerLog = 4;
  constexpr int kPerThread = 150;
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    obs::EventLog* log = w == 0 ? &a : &b;
    for (int t = 0; t < kThreadsPerLog; ++t) {
      threads.emplace_back([log, w, t] {
        for (int i = 0; i < kPerThread; ++i) {
          // Varying lengths so a torn write would misalign visibly.
          const std::string line =
              std::move(obs::JsonObjectBuilder()
                            .Int("log", w)
                            .Int("thread", t)
                            .Int("seq", i)
                            .Str("pad", std::string(32 + (i % 5) * 40, 'y')))
                  .Finish();
          ASSERT_TRUE(log->Append(line));
        }
      });
    }
  }
  for (std::thread& t : threads) t.join();
  a.Close();
  b.Close();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(2) * kThreadsPerLog * kPerThread);
  int per_log[2] = {};
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.front(), '{');
    ASSERT_EQ(line.back(), '}');
    ASSERT_EQ(line.find('{', 1), std::string::npos) << line;
    const std::size_t pos = line.find("\"log\":");
    ASSERT_NE(pos, std::string::npos);
    const int log_index = std::atoi(line.c_str() + pos + 6);
    ASSERT_GE(log_index, 0);
    ASSERT_LE(log_index, 1);
    ++per_log[log_index];
  }
  EXPECT_EQ(per_log[0], kThreadsPerLog * kPerThread);
  EXPECT_EQ(per_log[1], kThreadsPerLog * kPerThread);
  std::remove(path.c_str());
}

TEST(EventLogTest, OpenFailureLeavesLogClosed) {
  obs::EventLog log;
  EXPECT_FALSE(log.Open("/nonexistent-dir/events.jsonl"));
  EXPECT_FALSE(log.is_open());
  EXPECT_FALSE(log.Append("{}"));
}

}  // namespace
}  // namespace poisonrec
