# Empty compiler generated dependencies file for poisonrec_data.
# This may be replaced when dependencies are built.
