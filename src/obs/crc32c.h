// CRC32C (Castagnoli) and the JSONL line-checksum framing used by the
// storage integrity layer (journals, leases, the unified event stream).
//
// Framing: a checksummed line is an ordinary JSON object whose LAST
// member is `"crc":"xxxxxxxx"` (8 lowercase hex digits). The CRC is
// computed over the line as it would read WITHOUT that member — i.e.
// over `prefix + "}"` where the emitted line is `prefix + ,"crc":"…" +
// }`. The line stays valid JSON, so every existing parser keeps
// working; verifiers that know the framing can additionally detect
// single-bit rot anywhere in the record (ParseJson alone accepts many
// flipped bytes inside string values).
//
// Lives in obs/ (the foundation layer, like json.h) so event_log.cc can
// splice checksums without depending on util/.
#ifndef POISONREC_OBS_CRC32C_H_
#define POISONREC_OBS_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace poisonrec::obs {

/// CRC32C of `data`, continuing from `seed` (pass the previous return
/// value to checksum a buffer in chunks; 0 starts a fresh stream).
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t Crc32c(std::string_view data, std::uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// Splices `,"crc":"xxxxxxxx"` before the closing brace of a JSON
/// object line. Lines that are not `{...}` objects pass through
/// unchanged (EventLog does not validate JSON; neither does this).
std::string WithLineChecksum(std::string line);

enum class LineChecksum : std::uint8_t {
  /// A crc member is present and matches the line content.
  kVerified = 0,
  /// No crc member: a legacy (pre-integrity) line, not an error.
  kAbsent = 1,
  /// A crc member is present but does not match — the line rotted.
  kMismatch = 2,
};

/// Checks the trailing crc member of `line` (no surrounding newline).
LineChecksum VerifyLineChecksum(std::string_view line);

}  // namespace poisonrec::obs

#endif  // POISONREC_OBS_CRC32C_H_
