# Empty compiler generated dependencies file for poisonrec_env.
# This may be replaced when dependencies are built.
