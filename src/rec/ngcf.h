// NGCF: Neural Graph Collaborative Filtering (Wang et al., SIGIR'19).
// User/item embeddings are refined by L rounds of message passing over the
// symmetric-normalized user-item bipartite graph:
//   E^{l+1} = LeakyReLU( W1 (L E^l + E^l) + W2 (L E^l ⊙ E^l) )
// and the final representation concatenates all layers. Trained with the
// BPR pairwise loss. Poisoning changes both the training pairs and the
// propagation graph, so Update rebuilds the adjacency with the poison
// edges included.
#ifndef POISONREC_REC_NGCF_H_
#define POISONREC_REC_NGCF_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "nn/sparse.h"
#include "rec/factor_model.h"
#include "rec/recommender.h"

namespace poisonrec::rec {

class Ngcf : public Recommender {
 public:
  explicit Ngcf(const FitConfig& config = FitConfig());
  Ngcf(const Ngcf& other);
  Ngcf& operator=(const Ngcf&) = delete;

  std::string Name() const override { return "NGCF"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

  /// Base embedding table rows for items (offset num_users_), used for
  /// strategy visualization.
  const nn::Tensor& NodeEmbeddings() const;
  std::size_t item_offset() const { return num_users_; }

 private:
  struct Net {
    Net(std::size_t num_nodes, std::size_t dim, std::size_t layers,
        Rng* rng);
    std::vector<nn::Tensor> Parameters() const;
    nn::Embedding nodes;  // (U+I) x dim
    std::vector<nn::Linear> w1;
    std::vector<nn::Linear> w2;
  };

  /// Builds the normalized Laplacian from the accumulated positive edges.
  void RebuildGraph();

  /// Propagates embeddings; returns the concatenated multi-layer
  /// representation ((U+I) x dim*(layers+1)).
  nn::Tensor Propagate() const;

  /// Recomputes cached final embeddings for scoring (no grad).
  void RefreshCache();

  void TrainEpochs(const std::vector<data::Interaction>& interactions,
                   std::size_t epochs, Rng* rng);

  FitConfig config_;
  std::size_t num_users_ = 0;
  std::size_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::CsrMatrix> laplacian_;
  std::vector<std::unordered_set<data::ItemId>> positives_;
  std::vector<data::Interaction> clean_;  // replay pool for Update
  nn::Tensor cached_final_;  // plain data, no grad
  std::uint64_t update_seed_ = 0;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_NGCF_H_
