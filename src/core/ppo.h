// PoisonRec training loop (paper Algorithm 1). Each training step samples
// M episodes (N trajectories each) from the current policy, injects them
// into the black-box environment for RecNum rewards, then runs K epochs of
// PPO updates with the clipped surrogate objective (Eq. 7/9) on
// batch-normalized rewards (Eq. 8).
#ifndef POISONREC_CORE_PPO_H_
#define POISONREC_CORE_PPO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/trajectory.h"
#include "env/environment.h"
#include "env/fault.h"
#include "nn/optimizer.h"
#include "util/retry.h"
#include "util/status.h"

namespace poisonrec::core {

struct PoisonRecConfig {
  /// M: episodes sampled per training step (paper: 32).
  std::size_t samples_per_step = 32;
  /// B: update batch size, B <= M (paper: 32).
  std::size_t batch_size = 32;
  /// K: PPO epochs per training step (paper: 3).
  std::size_t update_epochs = 3;
  /// Adam learning rate (paper: 2e-3).
  float learning_rate = 2e-3f;
  /// PPO clip ratio ε (paper: 0.1).
  float clip_epsilon = 0.1f;
  /// Evaluate the M independent reward queries of each step concurrently.
  /// Sampling stays sequential, so results are identical either way.
  bool parallel_rewards = false;
  /// Worker threads for parallel evaluation (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Per-query retry schedule, used when a FaultyEnvironment is attached
  /// (each of the M reward queries retries independently).
  RetryPolicy retry;
  PolicyConfig policy;
  std::uint64_t seed = 99;
};

/// Per-training-step telemetry (drives Figure 4/5 and the timing study).
struct TrainStepStats {
  std::size_t step = 0;
  double mean_reward = 0.0;
  double max_reward = 0.0;
  double min_reward = 0.0;
  double best_reward_so_far = 0.0;
  /// Mean clipped-surrogate loss over the K update epochs.
  double loss = 0.0;
  /// Wall-clock seconds for the full training step.
  double seconds = 0.0;
  /// Fraction of sampled clicks on target items (Figure 5 statistic).
  double target_click_ratio = 0.0;
  /// Reward queries that still failed after exhausting the retry budget.
  std::size_t failed_queries = 0;
  /// Re-queries issued across all M reward queries of the step.
  std::size_t retries = 0;
  /// Failed queries whose reward was imputed with the batch mean (0 when
  /// the whole batch failed — nothing to impute from).
  std::size_t imputed_rewards = 0;
};

/// The PoisonRec attack agent: ties a Policy to an AttackEnvironment and
/// runs Algorithm 1.
class PoisonRecAttacker {
 public:
  /// The environment must outlive the attacker.
  PoisonRecAttacker(const env::AttackEnvironment* environment,
                    const PoisonRecConfig& config);

  /// One outer iteration of Algorithm 1 (sample M episodes, K PPO epochs).
  TrainStepStats TrainStep();

  /// Runs `steps` iterations; returns per-step stats.
  std::vector<TrainStepStats> Train(std::size_t steps);

  /// Highest-reward episode observed so far.
  const Episode& best_episode() const { return best_episode_; }

  /// The best attack found, as environment trajectories.
  std::vector<env::Trajectory> BestAttack() const {
    return ToEnvTrajectories(best_episode_.trajectories);
  }

  /// Samples a fresh episode from the current policy and evaluates it.
  Episode SampleAndEvaluate();

  /// Routes all subsequent reward queries through the fault-injecting
  /// decorator: each query retries per `config().retry`, and queries that
  /// still fail degrade gracefully (batch-mean imputation, excluded from
  /// Eq. 8 statistics). `faulty->base()` must be the environment this
  /// attacker was constructed with. `retry_sleep` overrides how backoff
  /// waits are spent ({} = really sleep); tests pass a fake clock.
  void AttachFaultyEnvironment(const env::FaultyEnvironment* faulty,
                               SleepFn retry_sleep = {});

  /// Persists everything TrainStep depends on — policy parameters, Adam
  /// moments, RNG state, steps taken, best episode — so a crashed run can
  /// resume bit-identically. The write is atomic (tmp file + rename): a
  /// crash mid-write never corrupts an existing checkpoint.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores a SaveCheckpoint file into this attacker. The attacker must
  /// have been constructed with the same configuration and environment
  /// shape (parameter shapes are validated).
  Status LoadCheckpoint(const std::string& path);

  Policy& policy() { return *policy_; }
  const Policy& policy() const { return *policy_; }
  const PoisonRecConfig& config() const { return config_; }
  std::size_t steps_taken() const { return steps_taken_; }

 private:
  /// PPO surrogate loss over one batch of episodes; differentiable.
  nn::Tensor PpoLoss(const std::vector<const Episode*>& batch,
                     double* loss_value);

  const env::AttackEnvironment* env_;
  const env::FaultyEnvironment* faulty_ = nullptr;
  SleepFn retry_sleep_;
  PoisonRecConfig config_;
  std::unique_ptr<Policy> policy_;
  std::unique_ptr<nn::Adam> optimizer_;
  Rng rng_;
  Episode best_episode_;
  std::size_t steps_taken_ = 0;
};

}  // namespace poisonrec::core

#endif  // POISONREC_CORE_PPO_H_
