// Durable-write helpers for the crash-safety paths (checkpoints, the
// fleet journal). The atomic tmp+rename idiom alone only protects
// against *process* crashes: after a machine crash (power loss, kernel
// panic) the rename can be on disk while the file's data blocks are not,
// leaving a zero-length "committed" file at the destination. Full
// durability needs three steps:
//
//   1. write tmp file, fsync it          (data blocks reach the disk)
//   2. rename tmp -> final               (atomic visibility switch)
//   3. fsync the parent directory        (the rename itself is durable)
//
// Loaders must still treat a truncated file as possible (old kernels,
// non-POSIX filesystems) and reject it with StatusCode::kDataLoss
// rather than crashing.
#ifndef POISONREC_UTIL_FSIO_H_
#define POISONREC_UTIL_FSIO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace poisonrec {

/// fsyncs the file at `path` (opens it read-only; the data is already
/// written). kIoError if the file cannot be opened or the sync fails.
Status FsyncFile(const std::string& path);

/// fsyncs the directory containing `path`, making a completed rename of
/// `path` durable. A path without a directory component syncs ".".
Status FsyncParentDirectory(const std::string& path);

/// Publishes `contents` at `path` with the full three-step discipline
/// above: write to `path` + `tmp_suffix`, fsync, rename over `path`,
/// fsync the parent directory. Readers therefore see either the old
/// file or the complete new one, never a torn intermediate — the same
/// contract checkpoints rely on, reused by the campaign lease files
/// (orch/lease.h).
Status WriteFileDurable(const std::string& path, std::string_view contents,
                        const std::string& tmp_suffix = ".tmp");

}  // namespace poisonrec

#endif  // POISONREC_UTIL_FSIO_H_
