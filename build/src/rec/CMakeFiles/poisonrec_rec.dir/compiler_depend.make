# Empty compiler generated dependencies file for poisonrec_rec.
# This may be replaced when dependencies are built.
