#include "core/ppo.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "nn/graph.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fsio.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace poisonrec::core {

namespace {

// Attacker checkpoint framing ("PRCK", version 1). Payload layout:
//   u64 steps_taken
//   policy parameters: u64 count, then per tensor u64 rows, u64 cols,
//     float32 payload
//   Adam: u64 step_count, then per parameter m[] and v[] float32 payloads
//   RNG engine state: u64 length + text blob
//   best episode: f64 reward, u8 observed, u64 n_trajectories, then per
//     trajectory u64 attacker_index, u64 n_steps, per step u64 item,
//     u64 path_len + i32s, u64 logprob_len + f64s
//   v2 appends the adaptive-defender campaign state:
//   account pool: u8 enabled; when enabled u64 num_slots, u64
//     total_accounts, u64 next_account, u64 retired, then per slot a u64
//     account id (dead slots as u64 max)
//   defender: u8 attached; when attached u64 blob length + the
//     DefendedEnvironment::SerializeState payload (history, bans, sweep
//     cursor)
//   v3 inserts the episode-sampling stream state right after
//   steps_taken:
//   u64 sampling stream root seed (== config.seed; episode m of step s
//     draws from Rng(DeriveStreamSeed(root, s, m)))
//   v4 keeps the v3 payload bit-identical but wraps the whole file in
//   the util/fsio integrity footer ("PRIF": magic, version, payload
//   length, CRC32C), so load verifies the checkpoint byte-for-byte and
//   classifies damage as torn (interrupted publish) vs corrupt (bit
//   rot) instead of trusting whatever parses.
// Version history: v1 predates the account pool / defended environment
// (PR 1-2); v2 predates per-episode sampling streams — under v2
// sampling advanced the shared RNG, so a v2 engine blob encodes a draw
// order that no longer exists and resuming from it would not reproduce
// an uninterrupted run; v3 predates the whole-file checksum, so its
// bytes cannot be verified against rot. Old versions are rejected with
// kInvalidArgument rather than being misparsed.
constexpr std::uint32_t kCheckpointMagic = 0x5052434bu;  // "PRCK"
constexpr std::uint32_t kCheckpointVersion = 4;
constexpr std::uint64_t kDeadSlotTag = ~0ull;

void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteFloats(std::ostream& out, const std::vector<float>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool ReadU64(std::istream& in, std::uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadF64(std::istream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadFloats(std::istream& in, std::vector<float>* v) {
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(v->size() * sizeof(float)));
  return static_cast<bool>(in);
}

}  // namespace

// One TrainStep's recorded update graph (config().engine
// .reuse_update_graph). The K epochs of a step recompute the exact same
// ops over the exact same trajectories: between epochs only the
// parameters change (advanced by Adam) plus the host-recomputed clip
// masks that depend on them. So epoch 0 records the two differentiable
// forwards on tapes — the log-prob recompute and the surrogate loss,
// with the host-side mask pass sitting between them — and captures the
// backward schedule; epochs 1..K-1 replay all three instead of
// re-flattening, re-taping, and re-walking the graph. Valid only while
// the batch is the full episode set (a resampled batch changes the
// graph), which TrainStep checks before constructing one.
struct PpoUpdateGraph {
  bool built = false;
  // Flattened batch, fixed for the step.
  std::vector<const SampledTrajectory*> trajs;
  std::vector<double> traj_advantage;
  // Forward tapes: policy log-prob recompute, then the clipped
  // surrogate. Replay order matters — masks are derived from the
  // recomputed log-probs before the loss tape runs.
  nn::GraphTape recompute_tape;
  nn::GraphTape loss_tape;
  nn::RecordedBackward backward;
  std::vector<DecisionBatch> decisions;
  // The clip masks are the only loss-graph leaves that change between
  // epochs; their data is overwritten in place before replaying.
  std::vector<nn::Tensor> adv_masks;
  nn::Tensor loss;
};

PoisonRecAttacker::PoisonRecAttacker(const env::AttackEnvironment* environment,
                                     const PoisonRecConfig& config)
    : env_(environment), config_(config), rng_(config.seed) {
  POISONREC_CHECK(env_ != nullptr);
  POISONREC_CHECK_GE(config_.samples_per_step, config_.batch_size);
  POISONREC_CHECK_GE(config_.batch_size, 2u)
      << "reward normalization (Eq. 8) needs at least 2 samples";

  // With a replacement pool, the environment's account space covers the
  // reserve; the policy keeps controlling only the initial fleet.
  num_slots_ = env_->num_attackers();
  if (config_.pool.enabled) {
    POISONREC_CHECK_GT(env_->num_attackers(), config_.pool.reserve_accounts)
        << "reserve_accounts must leave at least one policy slot";
    num_slots_ = env_->num_attackers() - config_.pool.reserve_accounts;
    pool_ = std::make_unique<AccountPool>(num_slots_, env_->num_attackers());
  }

  // Attacker knowledge: item count + popularity (crawlable), target ids.
  std::vector<data::ItemId> originals;
  {
    const std::vector<std::size_t>& pop = env_->item_popularity();
    originals.reserve(env_->num_original_items());
    for (data::ItemId i = 0; i < env_->num_original_items(); ++i) {
      originals.push_back(i);
    }
    std::sort(originals.begin(), originals.end(),
              [&pop](data::ItemId a, data::ItemId b) {
                if (pop[a] != pop[b]) return pop[a] < pop[b];
                return a < b;
              });
  }
  policy_ = std::make_unique<Policy>(num_slots_, env_->num_total_items(),
                                     originals, env_->target_items(),
                                     config_.policy);
  optimizer_ = std::make_unique<nn::Adam>(policy_->Parameters(),
                                          config_.learning_rate);
  if (config_.guard.incident_capacity > 0) {
    incidents_.set_capacity(config_.guard.incident_capacity);
  }
  incidents_.set_sink_path(config_.guard.incident_log_path);
}

Episode PoisonRecAttacker::SampleAndEvaluate() {
  Episode episode;
  episode.trajectories =
      policy_->SampleEpisode(env_->trajectory_length(), &rng_);
  episode.reward = env_->Evaluate(MapToAccounts(episode.trajectories));
  return episode;
}

void PoisonRecAttacker::AttachFaultyEnvironment(
    const env::FaultyEnvironment* faulty, SleepFn retry_sleep) {
  POISONREC_CHECK(faulty == nullptr || &faulty->base() == env_)
      << "faulty environment must decorate the attacker's environment";
  POISONREC_CHECK(faulty == nullptr || defended_ == nullptr)
      << "stack the fault layer inside the DefendedEnvironment instead of "
         "attaching both";
  faulty_ = faulty;
  retry_sleep_ = std::move(retry_sleep);
}

void PoisonRecAttacker::AttachDefendedEnvironment(
    env::DefendedEnvironment* defended, SleepFn retry_sleep) {
  POISONREC_CHECK(defended == nullptr || &defended->base() == env_)
      << "defended environment must decorate the attacker's environment";
  POISONREC_CHECK(defended == nullptr || faulty_ == nullptr)
      << "stack the fault layer inside the DefendedEnvironment instead of "
         "attaching both";
  defended_ = defended;
  retry_sleep_ = std::move(retry_sleep);
}

std::vector<env::Trajectory> PoisonRecAttacker::MapToAccounts(
    const std::vector<SampledTrajectory>& trajectories) const {
  if (pool_ == nullptr) return ToEnvTrajectories(trajectories);
  std::vector<env::Trajectory> out;
  out.reserve(trajectories.size());
  for (const SampledTrajectory& traj : trajectories) {
    const std::size_t account = pool_->account(traj.attacker_index);
    if (account == AccountPool::kDeadSlot) continue;  // fleet shrank
    env::Trajectory t;
    t.attacker_index = account;
    t.items.reserve(traj.steps.size());
    for (const SampledStep& step : traj.steps) t.items.push_back(step.item);
    out.push_back(std::move(t));
  }
  return out;
}

void PoisonRecAttacker::SyncDefenderState(TrainStepStats* stats) {
  std::vector<std::size_t> banned;
  if (defended_ != nullptr) banned = defended_->BannedAccounts();
  stats->banned_accounts = banned.size();
  if (pool_ == nullptr) {
    // Pool-less degradation: a banned slot is simply gone for good.
    std::size_t live = num_slots_;
    for (std::size_t account : banned) {
      if (account < num_slots_) --live;
    }
    stats->effective_attackers = live;
    return;
  }
  for (std::size_t account : banned) pool_->OnBanned(account);
  stats->pool_remaining = pool_->reserve_remaining();
  stats->effective_attackers = pool_->live_slots();
  const std::size_t min_live = config_.pool.min_live_attackers;
  if (min_live > 0 && pool_->live_slots() < min_live &&
      campaign_status_.ok()) {
    // Incident post-mortem, then abort: this is a resource failure, not a
    // numerical anomaly — it must not trip the rollback driver.
    GuardEvent event{GuardEventKind::kAccountPoolExhausted,
                     static_cast<double>(pool_->live_slots()),
                     static_cast<double>(min_live),
                     std::to_string(pool_->retired_accounts()) +
                         " accounts banned, reserve empty, " +
                         std::to_string(pool_->live_slots()) + "/" +
                         std::to_string(num_slots_) + " slots live"};
    incidents_.Record(stats->step, event);
    campaign_status_ = Status::ResourceExhausted(
        "attacker pool exhausted at step " + std::to_string(stats->step) +
        ": " + event.detail);
    POISONREC_LOG(Warning) << "campaign aborted: "
                           << campaign_status_.message();
  }
}

void PoisonRecAttacker::EmitStepTelemetry(const TrainStepStats& stats) {
  // Metric pointers are fetched once per process (the registry returns
  // stable addresses); after that each line is a relaxed atomic op.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static obs::Counter* const steps_total =
      reg.GetCounter("poisonrec_ppo_steps_total");
  static obs::Counter* const retries_total =
      reg.GetCounter("poisonrec_ppo_retries_total");
  static obs::Counter* const failed_total =
      reg.GetCounter("poisonrec_ppo_failed_queries_total");
  static obs::Counter* const imputed_total =
      reg.GetCounter("poisonrec_ppo_imputed_rewards_total");
  static obs::Gauge* const reward_mean =
      reg.GetGauge("poisonrec_ppo_reward_mean");
  static obs::Gauge* const reward_best =
      reg.GetGauge("poisonrec_ppo_reward_best");
  static obs::Gauge* const entropy = reg.GetGauge("poisonrec_ppo_entropy");
  static obs::Gauge* const approx_kl = reg.GetGauge("poisonrec_ppo_approx_kl");
  static obs::Gauge* const grad_norm = reg.GetGauge("poisonrec_ppo_grad_norm");
  static obs::Gauge* const banned =
      reg.GetGauge("poisonrec_defense_banned_accounts");
  static obs::Gauge* const pool_remaining =
      reg.GetGauge("poisonrec_pool_reserve_remaining");
  static obs::Gauge* const effective =
      reg.GetGauge("poisonrec_pool_effective_attackers");
  static obs::Histogram* const reward_hist =
      reg.GetHistogram("poisonrec_ppo_reward");
  static obs::Histogram* const entropy_hist =
      reg.GetHistogram("poisonrec_ppo_entropy");
  static obs::Histogram* const grad_norm_hist =
      reg.GetHistogram("poisonrec_ppo_grad_norm");
  static obs::Histogram* const step_seconds =
      reg.GetHistogram("poisonrec_ppo_step_seconds");
  steps_total->Increment();
  retries_total->Increment(stats.retries);
  failed_total->Increment(stats.failed_queries);
  imputed_total->Increment(stats.imputed_rewards);
  reward_mean->Set(stats.mean_reward);
  reward_best->Set(stats.best_reward_so_far);
  entropy->Set(stats.entropy);
  approx_kl->Set(stats.approx_kl);
  grad_norm->Set(stats.pre_clip_grad_norm);
  banned->Set(static_cast<double>(stats.banned_accounts));
  pool_remaining->Set(static_cast<double>(stats.pool_remaining));
  effective->Set(static_cast<double>(stats.effective_attackers));
  reward_hist->Observe(stats.mean_reward);
  entropy_hist->Observe(stats.entropy);
  grad_norm_hist->Observe(stats.pre_clip_grad_norm);
  step_seconds->Observe(stats.seconds);

  if (event_log_ == nullptr) return;
  {
    obs::JsonObjectBuilder b;
    b.Str("type", "step")
        .Int("step", stats.step)
        .Num("reward_mean", stats.mean_reward)
        .Num("reward_max", stats.max_reward)
        .Num("reward_best", stats.best_reward_so_far)
        .Num("loss", stats.loss)
        .Num("entropy", stats.entropy)
        .Num("approx_kl", stats.approx_kl)
        .Num("grad_norm", stats.pre_clip_grad_norm)
        .Num("target_click_ratio", stats.target_click_ratio)
        .Num("seconds", stats.seconds)
        .Num("sample_seconds", stats.sample_seconds)
        .Num("query_seconds", stats.query_seconds)
        .Num("update_seconds", stats.update_seconds)
        .Num("other_seconds", stats.other_seconds)
        .Int("retries", stats.retries)
        .Int("failed_queries", stats.failed_queries)
        .Int("imputed_rewards", stats.imputed_rewards)
        .Int("guard_trips", stats.guard.events.size())
        .Int("banned_accounts", stats.banned_accounts)
        .Int("pool_remaining", stats.pool_remaining)
        .Int("effective_attackers", stats.effective_attackers);
    event_log_->Append(std::move(b).Finish());
  }
  if (defended_ != nullptr) {
    const std::vector<env::BanEvent> bans = defended_->ban_events();
    // A TrainGuarded rollback restores the defender's state, which can
    // shrink the ban list; follow the cursor down so the re-run's bans
    // are streamed again rather than skipped.
    if (bans.size() < ban_events_emitted_) ban_events_emitted_ = bans.size();
    for (std::size_t i = ban_events_emitted_; i < bans.size(); ++i) {
      obs::JsonObjectBuilder b;
      b.Str("type", "ban")
          .Int("step", stats.step)
          .Int("query_id", bans[i].query_id)
          .Int("attacker_index", bans[i].attacker_index)
          .Int("user_id", bans[i].user_id)
          .Num("suspicion", bans[i].suspicion);
      event_log_->Append(std::move(b).Finish());
    }
    ban_events_emitted_ = bans.size();
  }
}

void PoisonRecAttacker::EmitCheckpointEvent(const char* op,
                                            const std::string& path,
                                            bool ok) const {
  if (event_log_ == nullptr) return;
  obs::JsonObjectBuilder b;
  b.Str("type", "checkpoint")
      .Str("op", op)
      .Str("path", path)
      .Bool("ok", ok)
      .Int("steps_taken", steps_taken_);
  event_log_->Append(std::move(b).Finish());
}

void PoisonRecAttacker::RecordGuardEvent(TrainStepStats* stats,
                                         GuardEventKind kind, double value,
                                         double threshold,
                                         std::string detail) {
  static obs::Counter* const guard_trips =
      obs::MetricsRegistry::Global().GetCounter(
          "poisonrec_guard_trips_total");
  guard_trips->Increment();
  GuardEvent event{kind, value, threshold, std::move(detail)};
  incidents_.Record(stats->step, event);
  POISONREC_LOG(Warning) << "guard tripped at step " << stats->step << ": "
                         << GuardEventKindName(kind) << " (" << event.detail
                         << ")";
  stats->guard.events.push_back(std::move(event));
}

bool PoisonRecAttacker::SweepPostStep(TrainStepStats* stats) {
  const std::vector<nn::Tensor>& params = optimizer_->parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const FiniteSweep sweep = SweepFinite(params[i].data());
    if (!sweep.clean()) {
      RecordGuardEvent(stats, GuardEventKind::kNonFiniteParameter,
                       std::numeric_limits<double>::quiet_NaN(), 0.0,
                       "parameter " + std::to_string(i) + ": " +
                           std::to_string(sweep.bad()) + "/" +
                           std::to_string(sweep.checked) + " non-finite");
      return false;
    }
  }
  const std::vector<std::vector<float>>& m = optimizer_->first_moments();
  const std::vector<std::vector<float>>& v = optimizer_->second_moments();
  for (std::size_t i = 0; i < m.size(); ++i) {
    const std::size_t bad = SweepFinite(m[i]).bad() + SweepFinite(v[i]).bad();
    if (bad > 0) {
      RecordGuardEvent(stats, GuardEventKind::kNonFiniteOptimizerState,
                       std::numeric_limits<double>::quiet_NaN(), 0.0,
                       "Adam moments of parameter " + std::to_string(i) +
                           ": " + std::to_string(bad) + " non-finite");
      return false;
    }
  }
  return true;
}

nn::Tensor PoisonRecAttacker::PpoLoss(
    const std::vector<const Episode*>& batch, double* loss_value,
    PpoDiagnostics* diagnostics, PpoUpdateGraph* graph) {
  const bool replay = graph != nullptr && graph->built;

  std::vector<const SampledTrajectory*> local_trajs;
  std::vector<double> local_adv;
  std::vector<DecisionBatch> local_decisions;
  if (!replay) {
    // Eq. 8: normalize rewards within the batch. Imputed (unobserved)
    // rewards are excluded from the statistics and get zero advantage.
    std::vector<double> advantages(batch.size());
    std::vector<char> observed(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      advantages[i] = batch[i]->reward;
      observed[i] = batch[i]->reward_observed ? 1 : 0;
    }
    NormalizeRewards(&advantages, observed);

    // Flatten trajectories; every decision inherits its episode's
    // advantage. Dead slots (drained account pool) are excluded: their
    // trajectories were never injected, so Eq. 7/9 renormalizes over the
    // surviving fleet's decisions.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (const SampledTrajectory& t : batch[i]->trajectories) {
        if (pool_ != nullptr && !pool_->IsLive(t.attacker_index)) continue;
        local_trajs.push_back(&t);
        local_adv.push_back(advantages[i]);
      }
    }

    if (graph != nullptr) {
      // Record the recompute forward so later epochs replay it against
      // the parameters Adam advanced, instead of re-taping it.
      nn::GraphTape::RecordScope record(&graph->recompute_tape);
      local_decisions = policy_->RecomputeLogProbs(local_trajs);
    } else {
      local_decisions = policy_->RecomputeLogProbs(
          local_trajs, config_.engine.per_row_recurrence);
    }
  } else {
    // Same trajectories, new parameters: recompute every decision's
    // log-prob by replaying the recorded nodes in creation order —
    // numerically identical to RecomputeLogProbs from scratch.
    graph->recompute_tape.ReplayForward();
  }
  const std::vector<DecisionBatch>& decisions =
      replay ? graph->decisions : local_decisions;
  const std::vector<double>& traj_advantage =
      replay ? graph->traj_advantage : local_adv;

  // Clipped surrogate (Eq. 7/9): obj = min(r*A, clip(r,1±ε)*A). The min
  // either selects the ratio term (gradient flows) or a clipped constant
  // (gradient zero); we encode that with a forward-computed mask. The
  // mask pass is host-side and runs every epoch (it depends on the fresh
  // log-probs); only the graph around it is reused.
  const float eps = config_.clip_epsilon;
  std::size_t n_decisions = 0;
  double const_part = 0.0;  // sum of clipped (constant) objective terms
  double neg_logp_sum = 0.0;  // -log pi(a|s): sampled-entropy estimate
  double kl_sum = 0.0;        // log pi_old - log pi_new: approx KL
  std::vector<std::vector<float>> masks(decisions.size());
  for (std::size_t b = 0; b < decisions.size(); ++b) {
    const DecisionBatch& batch_k = decisions[b];
    const std::size_t k = batch_k.new_log_probs.rows();
    n_decisions += k;
    masks[b].resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      const double adv = traj_advantage[batch_k.traj_index[i]];
      const double new_lp =
          static_cast<double>(batch_k.new_log_probs.at(i, 0));
      if (diagnostics != nullptr) {
        if (!std::isfinite(new_lp)) ++diagnostics->non_finite_log_probs;
        neg_logp_sum -= new_lp;
        kl_sum += batch_k.old_log_probs[i] - new_lp;
      }
      const double r = std::exp(new_lp - batch_k.old_log_probs[i]);
      bool unclipped;
      if (adv >= 0.0) {
        unclipped = r <= 1.0 + eps;
      } else {
        unclipped = r >= 1.0 - eps;
      }
      if (unclipped) {
        masks[b][i] = static_cast<float>(adv);
      } else {
        masks[b][i] = 0.0f;
        const double clipped_r =
            std::clamp(r, 1.0 - static_cast<double>(eps),
                       1.0 + static_cast<double>(eps));
        const_part += clipped_r * adv;
      }
    }
  }
  POISONREC_CHECK_GT(n_decisions, 0u);
  if (diagnostics != nullptr) {
    diagnostics->entropy =
        neg_logp_sum / static_cast<double>(n_decisions);
    diagnostics->approx_kl = kl_sum / static_cast<double>(n_decisions);
  }

  nn::Tensor loss;
  if (!replay) {
    std::optional<nn::GraphTape::RecordScope> record;
    if (graph != nullptr) record.emplace(&graph->loss_tape);
    nn::Tensor total;  // scalar accumulator of sum(obj)
    for (std::size_t b = 0; b < decisions.size(); ++b) {
      const DecisionBatch& batch_k = decisions[b];
      const std::size_t k = batch_k.new_log_probs.rows();
      std::vector<float> old_vals(k);
      for (std::size_t i = 0; i < k; ++i) {
        old_vals[i] = static_cast<float>(batch_k.old_log_probs[i]);
      }
      nn::Tensor old_t = nn::Tensor::FromData(k, 1, std::move(old_vals));
      nn::Tensor am_t = nn::Tensor::FromData(k, 1, std::move(masks[b]));
      if (graph != nullptr) graph->adv_masks.push_back(am_t);
      nn::Tensor ratio = nn::Exp(nn::Sub(batch_k.new_log_probs, old_t));
      nn::Tensor obj = nn::Sum(nn::Mul(ratio, am_t));
      total = total.defined() ? nn::Add(total, obj) : obj;
    }
    // loss = -(1/D) * (sum_masked + const_part)
    loss = nn::Scale(total, -1.0f / static_cast<float>(n_decisions));
    if (graph != nullptr) {
      graph->trajs = std::move(local_trajs);
      graph->traj_advantage = std::move(local_adv);
      graph->decisions = std::move(local_decisions);
      graph->loss = loss;
      graph->built = true;
    }
  } else {
    // Feed this epoch's masks into the recorded loss graph (the masks
    // are its only changing leaves — the Mul closures read the leaf's
    // data through the impl at call time) and replay it.
    for (std::size_t b = 0; b < graph->adv_masks.size(); ++b) {
      graph->adv_masks[b].mutable_data() = std::move(masks[b]);
    }
    graph->loss_tape.ReplayForward();
    loss = graph->loss;
  }
  if (loss_value != nullptr) {
    *loss_value = loss.item() -
                  const_part / static_cast<double>(n_decisions);
  }
  return loss;
}

TrainStepStats PoisonRecAttacker::TrainStep() {
  // The step span encloses the three phase spans below; phase timings in
  // `stats` are read straight off the spans, so the Chrome trace and the
  // printed/streamed numbers are the same measurement. Whatever the
  // phases don't cover is the step's bookkeeping, reported explicitly.
  obs::TraceSpan step_span("ppo/step");
  TrainStepStats stats;
  stats.step = ++steps_taken_;
  const GuardConfig& guard = config_.guard;
  // Liveness beacon for stall watchdogs: once at step entry and again
  // after each phase, so a supervisor can tell "long step" from "stuck".
  if (heartbeat_) heartbeat_();
  const auto finish = [&step_span, this](TrainStepStats& s) {
    s.seconds = step_span.Stop();
    s.other_seconds = std::max(0.0, s.seconds - s.sample_seconds -
                                        s.query_seconds - s.update_seconds);
    EmitStepTelemetry(s);
    if (heartbeat_) heartbeat_();
  };

  // Guard monitor: a corrupted policy samples garbage trajectories;
  // catch that before burning M reward queries on it.
  if (guard.enabled && guard.pre_step_param_sweep) {
    const FiniteSweep sweep = policy_->SweepParametersFinite();
    if (!sweep.clean()) {
      RecordGuardEvent(&stats, GuardEventKind::kNonFiniteParameter,
                       std::numeric_limits<double>::quiet_NaN(), 0.0,
                       std::to_string(sweep.bad()) + "/" +
                           std::to_string(sweep.checked) +
                           " non-finite before sampling");
      finish(stats);
      return stats;
    }
  }

  // -- Sample M training examples -------------------------------------------
  // Episode m of step s rolls out under its own Rng stream, derived as a
  // pure function of (seed, s, m) — the shared generator is never
  // advanced by sampling. That makes the M rollouts order-free: they run
  // under ParallelFor (SampleEpisode is a read-only no-grad pass over
  // the policy) and the sampled trajectories are bit-identical for any
  // thread count and across checkpoint/resume.
  obs::TraceSpan sample_span("ppo/sample");
  // Node-recycling arena for the step's tensor churn (sampling
  // activations, recompute/loss graphs). Activated before any tensor of
  // the step is created and reset when the step returns — declared here
  // so every local graph handle below destructs first and the reset can
  // recycle the whole step's nodes. The free list is a member, so step
  // s+1 reuses step s's buffers.
  std::optional<nn::TensorArena::Scope> arena_scope;
  if (config_.engine.tensor_arena) arena_scope.emplace(&step_arena_);
  std::vector<Episode> episodes(config_.samples_per_step);
  const std::size_t sample_threads =
      config_.parallel_sampling ? config_.num_threads : 1;
  const std::uint64_t step_index = stats.step;
  if (config_.engine.batched_sampling) {
    // One stacked (M·N x dim) recurrence for all M episodes: each
    // episode still consumes its own derived Rng stream in SampleEpisode
    // order, so the trajectories are bit-identical to the per-episode
    // path below (and to any earlier checkpoint's future).
    std::vector<Rng> rngs;
    rngs.reserve(episodes.size());
    for (std::size_t m = 0; m < episodes.size(); ++m) {
      rngs.emplace_back(DeriveStreamSeed(config_.seed, step_index, m));
    }
    std::vector<std::vector<SampledTrajectory>> sampled =
        policy_->SampleEpisodesBatched(episodes.size(),
                                       env_->trajectory_length(), &rngs);
    for (std::size_t m = 0; m < episodes.size(); ++m) {
      episodes[m].trajectories = std::move(sampled[m]);
    }
  } else {
    // The per-row baseline advances each attacker with its own 1×d
    // matmuls (the historical engine); same Rng streams, same bits.
    const bool per_row = config_.engine.per_row_recurrence;
    ParallelFor(episodes.size(), sample_threads,
                [this, &episodes, step_index, per_row](std::size_t m) {
                  Rng episode_rng(
                      DeriveStreamSeed(config_.seed, step_index, m));
                  episodes[m].trajectories =
                      per_row ? policy_->SampleEpisodePerRow(
                                    env_->trajectory_length(), &episode_rng)
                              : policy_->SampleEpisode(
                                    env_->trajectory_length(), &episode_rng);
                });
  }
  stats.sample_seconds = sample_span.Stop();
  if (heartbeat_) heartbeat_();

  // The black-box reward queries are independent and may run
  // concurrently. Retry state is per-query (own jitter stream, own stats
  // slot), so ParallelFor iterations stay independent and results match
  // the sequential order.
  obs::TraceSpan query_span("ppo/query");
  std::vector<std::size_t> query_retries(episodes.size(), 0);
  // A defended platform's ban state is order-dependent: queries evaluate
  // sequentially there so the ban sequence is bit-identical across runs
  // (and across a crash + resume) regardless of parallel_rewards.
  const std::size_t eval_threads =
      (config_.parallel_rewards && defended_ == nullptr) ? config_.num_threads
                                                         : 1;
  ParallelFor(
      episodes.size(), eval_threads,
      [this, &episodes, &query_retries, &stats](std::size_t m) {
        const std::vector<env::Trajectory> trajs =
            MapToAccounts(episodes[m].trajectories);
        if (faulty_ == nullptr && defended_ == nullptr) {
          episodes[m].reward = env_->Evaluate(trajs);
          return;
        }
        // Deterministic query id: resuming from a checkpoint replays the
        // same fault stream as an uninterrupted run.
        const std::uint64_t query_id =
            (static_cast<std::uint64_t>(stats.step) - 1) *
                config_.samples_per_step +
            m;
        RetryStats retry_stats;
        StatusOr<double> result = CallWithRetry<double>(
            config_.retry,
            [this, &trajs, query_id](std::size_t attempt) -> StatusOr<double> {
              const std::uint32_t a = static_cast<std::uint32_t>(attempt);
              return defended_ != nullptr
                         ? defended_->TryEvaluate(trajs, query_id, a)
                         : faulty_->TryEvaluate(trajs, query_id, a);
            },
            /*jitter_seed=*/query_id ^ config_.seed, &retry_stats,
            retry_sleep_, cancel_);
        query_retries[m] = retry_stats.retries;
        if (result.ok()) {
          episodes[m].reward = *result;
        } else {
          episodes[m].reward = 0.0;
          episodes[m].reward_observed = false;
        }
      });

  stats.query_seconds = query_span.Stop();
  if (heartbeat_) heartbeat_();

  for (std::size_t r : query_retries) stats.retries += r;

  // Adaptive-defender bookkeeping: pick up this step's bans, remap banned
  // slots onto reserve accounts, and abort once the fleet is too thin.
  if (defended_ != nullptr || pool_ != nullptr) {
    SyncDefenderState(&stats);
    if (!campaign_status_.ok()) {
      finish(stats);
      return stats;
    }
  }

  // Guard monitor (Eq. 8 input): a NaN/Inf reward must reach neither the
  // normalization statistics nor best-episode tracking — one poisoned
  // value would spread into every advantage of the batch. The step is
  // abandoned; TrainGuarded rolls back and retries with fresh queries.
  if (guard.enabled) {
    for (std::size_t m = 0; m < episodes.size(); ++m) {
      if (episodes[m].reward_observed &&
          !std::isfinite(episodes[m].reward)) {
        RecordGuardEvent(&stats, GuardEventKind::kNonFiniteReward,
                         episodes[m].reward, 0.0,
                         "episode " + std::to_string(m));
      }
    }
    if (stats.guard.tripped()) {
      finish(stats);
      return stats;
    }
  }

  // Graceful degradation: impute failed queries with the mean of the
  // observed rewards so they sit at zero advantage after Eq. 8.
  RunningStats reward_stats;
  double click_ratio_sum = 0.0;
  for (const Episode& ep : episodes) {
    click_ratio_sum += TargetClickRatio(ep, env_->num_original_items());
    if (!ep.reward_observed) {
      ++stats.failed_queries;
      continue;
    }
    reward_stats.AddTracked(ep.reward);
    if (best_episode_.trajectories.empty() ||
        ep.reward > best_episode_.reward) {
      best_episode_ = ep;
    }
  }
  if (reward_stats.count() > 0) {
    for (Episode& ep : episodes) {
      if (!ep.reward_observed) {
        ep.reward = reward_stats.mean();
        ++stats.imputed_rewards;
      }
    }
  }
  stats.mean_reward = reward_stats.mean();
  stats.max_reward = reward_stats.max();
  stats.min_reward = reward_stats.min();
  stats.best_reward_so_far = best_episode_.reward;
  stats.target_click_ratio =
      click_ratio_sum / static_cast<double>(config_.samples_per_step);
  if (stats.failed_queries > 0) {
    POISONREC_LOG(Warning)
        << "step " << stats.step << ": " << stats.failed_queries << "/"
        << episodes.size() << " reward queries failed after retries ("
        << stats.imputed_rewards << " imputed)";
  }

  // -- K epochs of PPO updates ----------------------------------------------
  // With fewer than 2 observed rewards Eq. 8 is undefined; skip the update
  // rather than training on fabricated advantages. A fully dead fleet
  // (pool drained with min_live_attackers == 0) has nothing to train on.
  if (reward_stats.count() < 2 ||
      (pool_ != nullptr && pool_->live_slots() == 0)) {
    stats.loss = 0.0;
    finish(stats);
    return stats;
  }
  obs::TraceSpan update_span("ppo/update");
  double loss_sum = 0.0;
  double entropy_sum = 0.0;
  double kl_sum = 0.0;
  std::size_t diag_epochs = 0;
  std::size_t completed_epochs = 0;
  // Graph reuse applies when every epoch trains on the full episode set
  // (B >= M — the paper's configuration): the K epochs then share one
  // recorded graph, built on epoch 0 and replayed afterwards. With a
  // resampled batch each epoch sees a different graph, so each builds
  // fresh. Declared after arena_scope: the graph (and the tapes' node
  // handles) must destruct before the arena reset sweeps the step.
  const bool reuse_graph = config_.engine.reuse_update_graph &&
                           !config_.engine.per_row_recurrence &&
                           config_.batch_size >= episodes.size() &&
                           config_.update_epochs > 1;
  std::optional<PpoUpdateGraph> update_graph;
  if (reuse_graph) update_graph.emplace();
  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    std::vector<const Episode*> batch;
    if (config_.batch_size >= episodes.size()) {
      for (const Episode& ep : episodes) batch.push_back(&ep);
    } else {
      std::vector<std::size_t> picks = rng_.SampleWithoutReplacement(
          episodes.size(), config_.batch_size);
      for (std::size_t p : picks) batch.push_back(&episodes[p]);
    }
    double loss_value = 0.0;
    PpoDiagnostics diag;
    nn::Tensor loss = PpoLoss(batch, &loss_value, &diag,
                              update_graph ? &*update_graph : nullptr);
    entropy_sum += diag.entropy;
    kl_sum += diag.approx_kl;
    ++diag_epochs;

    // Guard monitors on the Eq. 7/9 surrogate, checked before backward
    // so a divergent epoch never produces a gradient.
    if (guard.enabled) {
      const std::string where = "epoch " + std::to_string(epoch);
      if (diag.non_finite_log_probs > 0) {
        RecordGuardEvent(&stats, GuardEventKind::kNonFiniteLogit,
                         std::numeric_limits<double>::quiet_NaN(), 0.0,
                         std::to_string(diag.non_finite_log_probs) +
                             " decision log-probs, " + where);
        break;
      }
      if (!std::isfinite(loss_value)) {
        RecordGuardEvent(&stats, GuardEventKind::kNonFiniteLoss,
                         loss_value, 0.0, where);
        break;
      }
      if (guard.entropy_floor > 0.0 && diag.entropy < guard.entropy_floor) {
        RecordGuardEvent(&stats, GuardEventKind::kEntropyCollapse,
                         diag.entropy, guard.entropy_floor, where);
        break;
      }
      if (guard.approx_kl_threshold > 0.0 &&
          diag.approx_kl > guard.approx_kl_threshold) {
        RecordGuardEvent(&stats, GuardEventKind::kKlDivergence,
                         diag.approx_kl, guard.approx_kl_threshold, where);
        break;
      }
    }

    optimizer_->ZeroGrad();
    if (update_graph) {
      // First epoch: freeze the backward schedule (the exact closure
      // order Tensor::Backward would run). Every epoch: zero the
      // recorded nodes' grads — fresh tapes get that for free from node
      // construction — then run the frozen schedule. Same closures, same
      // order, same float accumulation as loss.Backward().
      if (!update_graph->backward.captured()) {
        update_graph->backward.Capture(loss);
      }
      update_graph->recompute_tape.ZeroGrads();
      update_graph->loss_tape.ZeroGrads();
      update_graph->backward.Run(loss);
    } else {
      loss.Backward();
    }
    const double pre_clip =
        static_cast<double>(nn::GradNorm(optimizer_->parameters()));
    stats.pre_clip_grad_norm = std::max(stats.pre_clip_grad_norm, pre_clip);
    if (guard.enabled) {
      if (!std::isfinite(pre_clip)) {
        RecordGuardEvent(&stats, GuardEventKind::kNonFiniteGradient,
                         pre_clip, 0.0,
                         "global grad norm, epoch " + std::to_string(epoch));
        break;
      }
      if (guard.grad_norm_threshold > 0.0 &&
          pre_clip > guard.grad_norm_threshold) {
        RecordGuardEvent(&stats, GuardEventKind::kGradNormExplosion,
                         pre_clip, guard.grad_norm_threshold,
                         "epoch " + std::to_string(epoch));
        break;
      }
    }
    if (config_.max_grad_norm > 0.0f) {
      nn::ClipGradNorm(optimizer_->parameters(), config_.max_grad_norm);
    }
    optimizer_->Step();
    loss_sum += loss_value;
    ++completed_epochs;
  }
  // Post-update sweep once per step rather than per epoch: corruption
  // introduced by an early epoch's update still surfaces this step, via
  // the next epoch's logit/loss monitors or this final sweep.
  if (guard.enabled && !stats.guard.tripped() && completed_epochs > 0) {
    SweepPostStep(&stats);
  }
  if (completed_epochs > 0) {
    stats.loss = loss_sum / static_cast<double>(completed_epochs);
  }
  if (diag_epochs > 0) {
    stats.entropy = entropy_sum / static_cast<double>(diag_epochs);
    stats.approx_kl = kl_sum / static_cast<double>(diag_epochs);
  }
  stats.update_seconds = update_span.Stop();
  finish(stats);
  return stats;
}

std::vector<TrainStepStats> PoisonRecAttacker::Train(std::size_t steps) {
  std::vector<TrainStepStats> all;
  all.reserve(steps);
  for (std::size_t s = 0; s < steps && campaign_status_.ok(); ++s) {
    if (InterruptRequested()) break;
    all.push_back(TrainStep());
  }
  return all;
}

GuardedTrainResult PoisonRecAttacker::TrainGuarded(
    std::size_t steps, const std::string& checkpoint_path) {
  POISONREC_CHECK(config_.guard.enabled)
      << "TrainGuarded requires config().guard.enabled";
  POISONREC_CHECK(!checkpoint_path.empty())
      << "TrainGuarded needs a checkpoint path for the last-good state";
  GuardedTrainResult result;
  const std::size_t baseline_incidents = incidents_.total_recorded();
  result.status = SaveCheckpoint(checkpoint_path);
  if (!result.status.ok()) return result;

  const std::size_t target = steps_taken_ + steps;
  std::size_t consecutive_rollbacks = 0;
  while (steps_taken_ < target) {
    // Soft stop (graceful fleet shutdown) and hard cancel both interrupt
    // at the step boundary; the previous step is already checkpointed,
    // so a restart resumes exactly here.
    if (InterruptRequested()) {
      result.status = Status::Cancelled("campaign interrupted at step " +
                                        std::to_string(steps_taken_));
      break;
    }
    TrainStepStats stats = TrainStep();
    const bool tripped = stats.guard.tripped();
    const std::string verdict = stats.guard.Summary();
    result.stats.push_back(std::move(stats));
    if (!campaign_status_.ok()) {
      // Resource abort (pool exhausted): not a rollbackable anomaly — the
      // incident log already holds the post-mortem.
      result.status = campaign_status_;
      break;
    }
    if (cancel_ != nullptr && cancel_->cancelled()) {
      // Hard cancel mid-step: in-flight reward queries were interrupted
      // (kCancelled → imputed rewards), so this step's update is not
      // trustworthy. Do NOT checkpoint it — the on-disk state stays at
      // the last clean boundary and a restart replays the step with
      // fresh, deterministic queries.
      result.status = Status::Cancelled(
          "campaign aborted mid-step " + std::to_string(steps_taken_) +
          "; step discarded, checkpoint remains at step " +
          std::to_string(steps_taken_ - 1));
      break;
    }
    if (!tripped) {
      consecutive_rollbacks = 0;
      result.status = SaveCheckpoint(checkpoint_path);
      if (!result.status.ok()) break;
      // The step is durable from this point on; only now may the fleet
      // journal (or any other observer) claim it as committed progress.
      if (step_committed_) step_committed_(result.stats.back());
      continue;
    }

    // Self-healing: discard the poisoned update by restoring the
    // last-good checkpoint (parameters, Adam moments, RNG, best episode
    // — bit-identical), then burn the tripped step's index so the retry
    // issues fresh reward queries instead of deterministically
    // replaying the same fault stream.
    const std::size_t burned_step = steps_taken_;
    result.status = LoadCheckpoint(checkpoint_path);
    if (!result.status.ok()) break;
    steps_taken_ = burned_step;
    ++result.rollbacks;
    ++consecutive_rollbacks;
    static obs::Counter* const rollbacks_total =
        obs::MetricsRegistry::Global().GetCounter(
            "poisonrec_ppo_rollbacks_total");
    rollbacks_total->Increment();
    if (event_log_ != nullptr) {
      obs::JsonObjectBuilder b;
      b.Str("type", "rollback")
          .Int("step", burned_step)
          .Str("verdict", verdict)
          .Int("consecutive", consecutive_rollbacks);
      event_log_->Append(std::move(b).Finish());
    }
    if (consecutive_rollbacks > config_.guard.max_rollbacks) {
      result.status = Status::FailedPrecondition(
          "guard rollback budget exhausted (" +
          std::to_string(consecutive_rollbacks) +
          " consecutive rollbacks at step " + std::to_string(burned_step) +
          "); last verdict: " + verdict);
      break;
    }
    // Adaptive backoff: a smaller step size and a tighter clip make the
    // retried update less likely to diverge the same way.
    optimizer_->set_lr(std::max(
        static_cast<float>(config_.guard.min_learning_rate),
        optimizer_->lr() * static_cast<float>(config_.guard.lr_backoff)));
    config_.clip_epsilon = std::max(
        static_cast<float>(config_.guard.min_clip_epsilon),
        config_.clip_epsilon * static_cast<float>(config_.guard.clip_backoff));
    POISONREC_LOG(Warning)
        << "rolled back step " << burned_step << " (" << verdict
        << "); lr now " << optimizer_->lr() << ", clip epsilon now "
        << config_.clip_epsilon << " (" << consecutive_rollbacks << "/"
        << config_.guard.max_rollbacks << " consecutive rollbacks)";
  }
  result.incidents = incidents_.total_recorded() - baseline_incidents;
  return result;
}

Status PoisonRecAttacker::SaveCheckpoint(const std::string& path) const {
  POISONREC_TRACE_SPAN("ppo/checkpoint_save");
  const Status status = [&]() -> Status {
  // Serialize into memory first: the payload needs a whole-file CRC
  // before any byte touches disk, and the in-memory size is trivial
  // next to the fsyncs the durable publish costs anyway.
  std::ostringstream out;
  {
    const std::uint32_t header[2] = {kCheckpointMagic, kCheckpointVersion};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    WriteU64(out, steps_taken_);
    // v3: the sampling stream-derivation state. Together with
    // steps_taken this pins every future episode's Rng stream, so a
    // resumed campaign samples exactly what the uninterrupted one would.
    WriteU64(out, config_.seed);

    const std::vector<nn::Tensor> params = policy_->Parameters();
    WriteU64(out, params.size());
    for (const nn::Tensor& p : params) {
      WriteU64(out, p.rows());
      WriteU64(out, p.cols());
      WriteFloats(out, p.data());
    }

    WriteU64(out, optimizer_->step_count());
    for (const std::vector<float>& m : optimizer_->first_moments()) {
      WriteFloats(out, m);
    }
    for (const std::vector<float>& v : optimizer_->second_moments()) {
      WriteFloats(out, v);
    }

    const std::string rng_state = rng_.SerializeState();
    WriteU64(out, rng_state.size());
    out.write(rng_state.data(),
              static_cast<std::streamsize>(rng_state.size()));

    WriteF64(out, best_episode_.reward);
    out.put(best_episode_.reward_observed ? 1 : 0);
    WriteU64(out, best_episode_.trajectories.size());
    for (const SampledTrajectory& traj : best_episode_.trajectories) {
      WriteU64(out, traj.attacker_index);
      WriteU64(out, traj.steps.size());
      for (const SampledStep& step : traj.steps) {
        WriteU64(out, step.item);
        WriteU64(out, step.path.size());
        for (int node : step.path) {
          const std::int32_t n32 = node;
          out.write(reinterpret_cast<const char*>(&n32), sizeof(n32));
        }
        WriteU64(out, step.old_log_probs.size());
        for (double lp : step.old_log_probs) WriteF64(out, lp);
      }
    }

    // v2: adaptive-defender campaign state (pool + platform ban state).
    out.put(pool_ != nullptr ? 1 : 0);
    if (pool_ != nullptr) {
      WriteU64(out, pool_->num_slots());
      WriteU64(out, pool_->total_accounts());
      WriteU64(out, pool_->next_account());
      WriteU64(out, pool_->retired_accounts());
      for (std::size_t a : pool_->slot_accounts()) {
        WriteU64(out, a == AccountPool::kDeadSlot ? kDeadSlotTag
                                                  : static_cast<std::uint64_t>(a));
      }
    }
    out.put(defended_ != nullptr ? 1 : 0);
    if (defended_ != nullptr) {
      const std::string blob = defended_->SerializeState();
      WriteU64(out, blob.size());
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    if (!out) return Status::IoError("serialize failed for " + path);
  }
  // Durable atomic publish with the integrity footer appended: write
  // tmp, fsync, rename, fsync the parent directory — so the published
  // name can never refer to unwritten data after a power loss, and a
  // crash before the rename leaves any previous checkpoint at `path`
  // untouched. The footer's CRC lets load verify every byte.
  return WriteFileDurableChecksummed(path, std::move(out).str());
  }();
  EmitCheckpointEvent("save", path, status.ok());
  return status;
}

Status PoisonRecAttacker::LoadCheckpoint(const std::string& path) {
  POISONREC_TRACE_SPAN("ppo/checkpoint_load");
  const Status status = [&]() -> Status {
  StatusOr<std::string> bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return Status::IoError("cannot open " + path);
  const std::string& bytes = *bytes_or;
  std::uint32_t header[2] = {0, 0};
  if (bytes.size() < sizeof(header)) {
    // Zero-length or short file: the writer (or the filesystem, after a
    // crash without the fsync path) lost the payload.
    return Status::DataLoss(path + " is truncated: shorter than the " +
                            "checkpoint header");
  }
  std::memcpy(header, bytes.data(), sizeof(header));
  if (header[0] != kCheckpointMagic) {
    return Status::InvalidArgument(path +
                                   " is not a PoisonRec attacker checkpoint");
  }
  if (header[1] != kCheckpointVersion) {
    std::string hint;
    if (header[1] < kCheckpointVersion) {
      hint = " (version " + std::to_string(header[1]) +
             " predates the v" + std::to_string(kCheckpointVersion) +
             " format's per-episode sampling streams and whole-file "
             "checksum; re-run the campaign to produce a current "
             "checkpoint)";
    }
    return Status::InvalidArgument("unsupported attacker checkpoint version " +
                                   std::to_string(header[1]) + hint);
  }
  // The header names a current checkpoint — now the integrity footer
  // decides whether the rest of the bytes can be trusted: a length
  // mismatch or missing footer is a torn publish, a CRC mismatch is
  // bit rot. Both are kDataLoss (lost state), never misparsed.
  std::size_t payload_size = 0;
  POISONREC_RETURN_NOT_OK(
      VerifyIntegrityFooter(bytes, path, &payload_size));
  std::istringstream in(bytes.substr(0, payload_size));
  in.seekg(sizeof(header));  // past the already-validated header
  std::uint64_t steps = 0;
  if (!ReadU64(in, &steps)) return Status::DataLoss("truncated checkpoint");
  std::uint64_t stream_seed = 0;
  if (!ReadU64(in, &stream_seed)) {
    return Status::DataLoss("truncated checkpoint");
  }
  if (stream_seed != config_.seed) {
    return Status::InvalidArgument(
        "checkpoint sampling stream seed " + std::to_string(stream_seed) +
        " does not match configured seed " + std::to_string(config_.seed) +
        "; resuming would change every future episode's RNG stream");
  }

  // Stage everything before touching live state: a truncated or
  // mismatched file must leave the attacker unchanged.
  std::vector<nn::Tensor> params = policy_->Parameters();
  std::uint64_t count = 0;
  if (!ReadU64(in, &count)) return Status::DataLoss("truncated checkpoint");
  if (count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " tensors, policy has " +
        std::to_string(params.size()));
  }
  std::vector<std::vector<float>> staged_params(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    if (!ReadU64(in, &rows) || !ReadU64(in, &cols)) {
      return Status::DataLoss("truncated checkpoint");
    }
    if (rows != params[i].rows() || cols != params[i].cols()) {
      return Status::InvalidArgument(
          "parameter " + std::to_string(i) + " shape mismatch: checkpoint " +
          std::to_string(rows) + "x" + std::to_string(cols) + " vs policy " +
          params[i].ShapeString());
    }
    staged_params[i].resize(params[i].size());
    if (!ReadFloats(in, &staged_params[i])) {
      return Status::DataLoss("truncated checkpoint payload");
    }
  }

  std::uint64_t adam_steps = 0;
  if (!ReadU64(in, &adam_steps)) return Status::DataLoss("truncated checkpoint");
  std::vector<std::vector<float>> m(params.size());
  std::vector<std::vector<float>> v(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    m[i].resize(params[i].size());
    if (!ReadFloats(in, &m[i])) return Status::DataLoss("truncated checkpoint");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    v[i].resize(params[i].size());
    if (!ReadFloats(in, &v[i])) return Status::DataLoss("truncated checkpoint");
  }

  std::uint64_t rng_len = 0;
  if (!ReadU64(in, &rng_len)) return Status::DataLoss("truncated checkpoint");
  std::string rng_state(rng_len, '\0');
  in.read(rng_state.data(), static_cast<std::streamsize>(rng_len));
  if (!in) return Status::DataLoss("truncated checkpoint");

  Episode best;
  std::uint64_t n_traj = 0;
  if (!ReadF64(in, &best.reward)) return Status::DataLoss("truncated checkpoint");
  const int observed = in.get();
  if (observed == std::ifstream::traits_type::eof()) {
    return Status::DataLoss("truncated checkpoint");
  }
  best.reward_observed = observed != 0;
  if (!ReadU64(in, &n_traj)) return Status::DataLoss("truncated checkpoint");
  best.trajectories.resize(n_traj);
  for (SampledTrajectory& traj : best.trajectories) {
    std::uint64_t attacker = 0;
    std::uint64_t n_steps = 0;
    if (!ReadU64(in, &attacker) || !ReadU64(in, &n_steps)) {
      return Status::DataLoss("truncated checkpoint");
    }
    traj.attacker_index = attacker;
    traj.steps.resize(n_steps);
    for (SampledStep& step : traj.steps) {
      std::uint64_t item = 0;
      std::uint64_t path_len = 0;
      if (!ReadU64(in, &item) || !ReadU64(in, &path_len)) {
        return Status::DataLoss("truncated checkpoint");
      }
      step.item = item;
      step.path.resize(path_len);
      for (int& node : step.path) {
        std::int32_t n32 = 0;
        in.read(reinterpret_cast<char*>(&n32), sizeof(n32));
        node = n32;
      }
      std::uint64_t lp_len = 0;
      if (!ReadU64(in, &lp_len)) return Status::DataLoss("truncated checkpoint");
      step.old_log_probs.resize(lp_len);
      for (double& lp : step.old_log_probs) {
        if (!ReadF64(in, &lp)) return Status::DataLoss("truncated checkpoint");
      }
    }
  }
  if (!in) return Status::DataLoss("truncated checkpoint");

  // v2 sections: account pool and defender state. Presence must match
  // this attacker's configuration — a pooled checkpoint cannot restore
  // into a pool-less attacker (or vice versa) without silently changing
  // campaign semantics.
  const int pool_flag = in.get();
  if (pool_flag == std::ifstream::traits_type::eof()) {
    return Status::DataLoss("truncated checkpoint");
  }
  if ((pool_flag != 0) != (pool_ != nullptr)) {
    return Status::InvalidArgument(
        pool_flag != 0
            ? "checkpoint carries account-pool state but this attacker has "
              "no pool configured"
            : "this attacker has an account pool but the checkpoint has no "
              "pool state");
  }
  std::vector<std::size_t> staged_slots;
  std::uint64_t pool_next = 0;
  std::uint64_t pool_retired = 0;
  if (pool_flag != 0) {
    std::uint64_t slots = 0;
    std::uint64_t total = 0;
    if (!ReadU64(in, &slots) || !ReadU64(in, &total) ||
        !ReadU64(in, &pool_next) || !ReadU64(in, &pool_retired)) {
      return Status::DataLoss("truncated checkpoint");
    }
    if (slots != pool_->num_slots() || total != pool_->total_accounts()) {
      return Status::InvalidArgument(
          "checkpoint pool shape " + std::to_string(slots) + "/" +
          std::to_string(total) + " does not match configured pool " +
          std::to_string(pool_->num_slots()) + "/" +
          std::to_string(pool_->total_accounts()));
    }
    if (pool_next > total) {
      return Status::InvalidArgument("corrupt pool state: next account " +
                                     std::to_string(pool_next) + " > " +
                                     std::to_string(total));
    }
    staged_slots.resize(slots);
    for (std::size_t& a : staged_slots) {
      std::uint64_t v = 0;
      if (!ReadU64(in, &v)) return Status::DataLoss("truncated checkpoint");
      if (v != kDeadSlotTag && v >= total) {
        return Status::InvalidArgument("corrupt pool state: slot maps to "
                                       "account " + std::to_string(v));
      }
      a = v == kDeadSlotTag ? AccountPool::kDeadSlot
                            : static_cast<std::size_t>(v);
    }
  }
  const int defender_flag = in.get();
  if (defender_flag == std::ifstream::traits_type::eof()) {
    return Status::DataLoss("truncated checkpoint");
  }
  if ((defender_flag != 0) != (defended_ != nullptr)) {
    return Status::InvalidArgument(
        defender_flag != 0
            ? "checkpoint carries defender state; attach the "
              "DefendedEnvironment before loading"
            : "a DefendedEnvironment is attached but the checkpoint has no "
              "defender state");
  }
  std::string defender_blob;
  if (defender_flag != 0) {
    std::uint64_t blob_len = 0;
    if (!ReadU64(in, &blob_len)) return Status::DataLoss("truncated checkpoint");
    defender_blob.resize(blob_len);
    in.read(defender_blob.data(), static_cast<std::streamsize>(blob_len));
    if (!in) return Status::DataLoss("truncated checkpoint");
  }

  // Commit: everything parsed cleanly. Fallible commits run first (the
  // RNG deserialize stages into a local, the defender restore stages
  // internally), so a bad payload still leaves the attacker untouched.
  Rng restored_rng(0);
  POISONREC_RETURN_NOT_OK(restored_rng.DeserializeState(rng_state));
  if (defended_ != nullptr) {
    POISONREC_RETURN_NOT_OK(defended_->RestoreState(defender_blob));
  }
  if (pool_ != nullptr) {
    pool_->Restore(std::move(staged_slots), pool_next, pool_retired);
  }
  POISONREC_RETURN_NOT_OK(
      optimizer_->RestoreState(adam_steps, std::move(m), std::move(v)));
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_data() = std::move(staged_params[i]);
  }
  rng_ = restored_rng;
  steps_taken_ = steps;
  best_episode_ = std::move(best);
  return Status::OK();
  }();
  EmitCheckpointEvent("load", path, status.ok());
  return status;
}

}  // namespace poisonrec::core
