// PPO trainer tests: Algorithm 1 mechanics, reward tracking, and the
// end-to-end learning property (reward rises on an ItemPop system).
#include "core/ppo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rec/registry.h"

namespace poisonrec::core {
namespace {

struct Fixture {
  Fixture()
      : environment(MakeLog(), rec::MakeRecommender("ItemPop").value(),
                    MakeEnvConfig()) {}

  static data::Dataset MakeLog() {
    data::SyntheticConfig cfg;
    cfg.num_users = 120;
    cfg.num_items = 100;
    cfg.num_interactions = 1200;
    cfg.seed = 3;
    return data::GenerateSynthetic(cfg);
  }

  static env::EnvironmentConfig MakeEnvConfig() {
    env::EnvironmentConfig cfg;
    cfg.num_attackers = 10;
    cfg.trajectory_length = 10;
    cfg.num_target_items = 4;
    cfg.num_candidate_originals = 30;
    cfg.top_k = 5;
    cfg.seed = 11;
    return cfg;
  }

  static PoisonRecConfig MakeAttackerConfig() {
    PoisonRecConfig cfg;
    cfg.samples_per_step = 6;
    cfg.batch_size = 6;
    cfg.update_epochs = 2;
    cfg.policy.embedding_dim = 8;
    cfg.policy.action_space = ActionSpaceKind::kBcbtPopular;
    cfg.seed = 7;
    return cfg;
  }

  env::AttackEnvironment environment;
};

TEST(TrajectoryUtilTest, ToEnvTrajectoriesStripsBookkeeping) {
  SampledTrajectory t;
  t.attacker_index = 3;
  t.steps.resize(2);
  t.steps[0].item = 5;
  t.steps[1].item = 9;
  auto env_trajs = ToEnvTrajectories({t});
  ASSERT_EQ(env_trajs.size(), 1u);
  EXPECT_EQ(env_trajs[0].attacker_index, 3u);
  EXPECT_EQ(env_trajs[0].items, (std::vector<data::ItemId>{5, 9}));
}

TEST(TrajectoryUtilTest, TargetClickRatio) {
  Episode ep;
  SampledTrajectory t;
  t.steps.resize(4);
  t.steps[0].item = 1;    // original
  t.steps[1].item = 100;  // target
  t.steps[2].item = 101;  // target
  t.steps[3].item = 2;    // original
  ep.trajectories.push_back(t);
  EXPECT_DOUBLE_EQ(TargetClickRatio(ep, 100), 0.5);
  EXPECT_DOUBLE_EQ(TargetClickRatio(Episode{}, 100), 0.0);
}

TEST(PoisonRecAttackerTest, SampleAndEvaluateProducesValidEpisode) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  Episode ep = attacker.SampleAndEvaluate();
  EXPECT_EQ(ep.trajectories.size(), 10u);
  EXPECT_GE(ep.reward, 0.0);
  for (const auto& t : ep.trajectories) {
    EXPECT_EQ(t.steps.size(), 10u);
  }
}

TEST(PoisonRecAttackerTest, TrainStepProducesStats) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  TrainStepStats stats = attacker.TrainStep();
  EXPECT_EQ(stats.step, 1u);
  EXPECT_GE(stats.max_reward, stats.mean_reward);
  EXPECT_GE(stats.mean_reward, stats.min_reward);
  EXPECT_EQ(stats.best_reward_so_far, attacker.best_episode().reward);
  EXPECT_TRUE(std::isfinite(stats.loss));
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GE(stats.target_click_ratio, 0.0);
  EXPECT_LE(stats.target_click_ratio, 1.0);
}

TEST(PoisonRecAttackerTest, BestRewardIsMonotone) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  double best = -1.0;
  for (int s = 0; s < 4; ++s) {
    TrainStepStats stats = attacker.TrainStep();
    EXPECT_GE(stats.best_reward_so_far, best);
    best = stats.best_reward_so_far;
    EXPECT_GE(stats.best_reward_so_far, stats.max_reward - 1e-9);
  }
}

TEST(PoisonRecAttackerTest, BestAttackMatchesBudget) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  attacker.TrainStep();
  auto attack = attacker.BestAttack();
  ASSERT_EQ(attack.size(), 10u);
  for (const auto& t : attack) {
    EXPECT_EQ(t.items.size(), 10u);
    for (data::ItemId item : t.items) {
      EXPECT_LT(item, f.environment.num_total_items());
    }
  }
}

TEST(PoisonRecAttackerTest, LearnsToPromoteOnItemPop) {
  // The headline property: training raises the mean episode reward and
  // the learned strategy concentrates clicks on targets (the paper's
  // ItemPop finding: ratio -> ~1).
  Fixture f;
  PoisonRecConfig cfg = Fixture::MakeAttackerConfig();
  cfg.samples_per_step = 8;
  cfg.batch_size = 8;
  cfg.update_epochs = 3;
  PoisonRecAttacker attacker(&f.environment, cfg);
  double first_mean = 0.0;
  double first_ratio = 0.0;
  double last_mean = 0.0;
  double last_ratio = 0.0;
  for (int s = 0; s < 25; ++s) {
    TrainStepStats stats = attacker.TrainStep();
    if (s == 0) {
      first_mean = stats.mean_reward;
      first_ratio = stats.target_click_ratio;
    }
    last_mean = stats.mean_reward;
    last_ratio = stats.target_click_ratio;
  }
  EXPECT_GT(last_mean, first_mean * 1.3)
      << "reward did not improve: " << first_mean << " -> " << last_mean;
  EXPECT_GT(last_ratio, first_ratio);
  EXPECT_GT(last_ratio, 0.55);
}

TEST(PoisonRecAttackerTest, TrainReturnsPerStepStats) {
  Fixture f;
  PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  auto stats = attacker.Train(3);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].step, 1u);
  EXPECT_EQ(stats[2].step, 3u);
  EXPECT_EQ(attacker.steps_taken(), 3u);
}

TEST(PoisonRecAttackerTest, DeterministicAcrossRuns) {
  Fixture f1;
  Fixture f2;
  PoisonRecAttacker a(&f1.environment, Fixture::MakeAttackerConfig());
  PoisonRecAttacker b(&f2.environment, Fixture::MakeAttackerConfig());
  auto sa = a.TrainStep();
  auto sb = b.TrainStep();
  EXPECT_DOUBLE_EQ(sa.mean_reward, sb.mean_reward);
  EXPECT_DOUBLE_EQ(sa.loss, sb.loss);
}

TEST(PoisonRecAttackerTest, WorksWithEveryActionSpace) {
  for (ActionSpaceKind kind :
       {ActionSpaceKind::kPlain, ActionSpaceKind::kBPlain,
        ActionSpaceKind::kBcbtPopular, ActionSpaceKind::kBcbtRandom,
        ActionSpaceKind::kCbtUnbiased}) {
    Fixture f;
    PoisonRecConfig cfg = Fixture::MakeAttackerConfig();
    cfg.policy.action_space = kind;
    PoisonRecAttacker attacker(&f.environment, cfg);
    TrainStepStats stats = attacker.TrainStep();
    EXPECT_TRUE(std::isfinite(stats.loss)) << ActionSpaceKindName(kind);
  }
}

}  // namespace
}  // namespace poisonrec::core
