// Durable-write helpers for the crash-safety paths (checkpoints, the
// fleet journal, campaign leases) plus the storage integrity layer:
// a deterministic I/O fault-injection shim (FaultyFs) and whole-file
// checksum framing for verify-on-load.
//
// The atomic tmp+rename idiom alone only protects against *process*
// crashes: after a machine crash (power loss, kernel panic) the rename
// can be on disk while the file's data blocks are not, leaving a
// zero-length "committed" file at the destination. Full durability
// needs three steps:
//
//   1. write tmp file, fsync it          (data blocks reach the disk)
//   2. rename tmp -> final               (atomic visibility switch)
//   3. fsync the parent directory        (the rename itself is durable)
//
// Loaders must still treat a truncated file as possible (old kernels,
// non-POSIX filesystems) and reject it with StatusCode::kDataLoss
// rather than crashing. The checksummed variants below make that
// rejection exact: a footer [magic, version, length, CRC32C] is
// appended on publish and verified on load, classifying damage as
// torn (length/footer wrong — an interrupted publish) versus corrupt
// (length right, checksum wrong — bit rot) versus missing.
//
// Every primitive here consults FaultyFs, the process-wide fault shim:
// chaos tests arm a (seed, schedule) pair and the Nth matching write /
// fsync / rename fails with ENOSPC/EIO, returns short, tears, or
// flips a bit — bit-deterministically, the same trick
// env::FaultyEnvironment plays with reward queries. Disarmed (the
// default) the shim is one relaxed atomic load per operation.
#ifndef POISONREC_UTIL_FSIO_H_
#define POISONREC_UTIL_FSIO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace poisonrec {

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

enum class FsFaultKind : std::uint8_t {
  /// write(2) fails with ENOSPC after a partial prefix lands (disk
  /// full mid-record — the torn-prefix case loaders must survive).
  kEnospc = 0,
  /// write(2) fails with EIO after a partial prefix lands.
  kEio = 1,
  /// The first write(2) of the operation returns short; the caller's
  /// retry loop must complete the record (benign if it does).
  kShortWrite = 2,
  /// fsync(2) fails with EIO (the dirty pages' fate is unknown).
  kFsyncFail = 3,
  /// rename(2) "succeeds" but the destination materialises as a torn
  /// prefix of the source (a crashed non-atomic filesystem).
  kTornRename = 4,
  /// The written bytes reach the file with one bit flipped (silent
  /// corruption in flight; only checksums can catch it).
  kBitFlip = 5,
};

const char* FsFaultKindName(FsFaultKind kind);

/// One scheduled fault: fires on the `nth` operation (1-based) of the
/// kind's category whose path contains `path_substring` (empty matches
/// every path), then disarms itself. Write-category kinds (kEnospc,
/// kEio, kShortWrite, kBitFlip) also match event-log appends.
struct FsFaultRule {
  FsFaultKind kind = FsFaultKind::kEio;
  std::string path_substring;
  std::uint64_t nth = 1;
};

struct FsFaultStats {
  std::uint64_t writes_seen = 0;
  std::uint64_t fsyncs_seen = 0;
  std::uint64_t renames_seen = 0;
  std::uint64_t appends_seen = 0;
  std::uint64_t faults_injected = 0;
};

/// Process-wide deterministic fault shim. Arm(seed, rules) installs a
/// schedule; every fault decision afterwards is a pure function of the
/// schedule, the per-rule match counters, and the seed (which derives
/// bit positions and tear lengths), so any single-fault run replays
/// bit-identically. Thread-safe; tests must Disarm() before asserting
/// clean behaviour.
class FaultyFs {
 public:
  static FaultyFs& Instance();

  void Arm(std::uint64_t seed, std::vector<FsFaultRule> rules);
  void Disarm();
  bool armed() const;
  FsFaultStats stats() const;

  // -- Hooks for the I/O primitives below (not for general use) -------------

  /// What a write-class consult decided.
  struct WriteFault {
    FsFaultKind kind = FsFaultKind::kShortWrite;
    bool fire = false;
    /// kShortWrite: bytes the first write() may consume.
    std::size_t short_bytes = 0;
    /// kBitFlip: bit index within the buffer to flip.
    std::size_t flip_bit = 0;
  };
  WriteFault OnWrite(const std::string& path, std::size_t size);
  /// True = inject an fsync failure.
  bool OnFsync(const std::string& path);
  /// >= 0 = tear the rename, publishing only this many source bytes.
  /// -1 = rename normally.
  std::int64_t OnRename(const std::string& to, std::size_t size);
  /// Event-log append consult (see obs::EventLog::SetAppendFaultHook).
  static bool EventAppendHook(const std::string& path, std::string* record);

 private:
  FaultyFs() = default;
  struct Impl;
  Impl* impl();
};

// ---------------------------------------------------------------------------
// Fault-aware I/O primitives
// ---------------------------------------------------------------------------

/// write(2) the whole buffer to `fd`, retrying EINTR and partial
/// writes until complete or a real error. `path` is for messages and
/// fault matching.
Status WriteAllFd(int fd, const char* data, std::size_t size,
                  const std::string& path);

/// fsync(2) with fault consult.
Status FsyncFd(int fd, const std::string& path);

/// rename(2) with fault consult (the torn-rename fault is simulated
/// here: a prefix of `from` is copied to `to` and `from` removed).
Status RenameFile(const std::string& from, const std::string& to);

/// fsyncs the file at `path` (opens it read-only; the data is already
/// written). kIoError if the file cannot be opened or the sync fails.
Status FsyncFile(const std::string& path);

/// fsyncs the directory containing `path`, making a completed rename of
/// `path` durable. A path without a directory component syncs ".".
Status FsyncParentDirectory(const std::string& path);

/// Publishes `contents` at `path` with the full three-step discipline
/// above: write to `path` + `tmp_suffix`, fsync, rename over `path`,
/// fsync the parent directory. Readers therefore see either the old
/// file or the complete new one, never a torn intermediate — the same
/// contract checkpoints rely on, reused by the campaign lease files
/// (orch/lease.h).
Status WriteFileDurable(const std::string& path, std::string_view contents,
                        const std::string& tmp_suffix = ".tmp");

// ---------------------------------------------------------------------------
// Whole-file integrity framing
// ---------------------------------------------------------------------------

/// "PRIF" — the integrity footer magic.
inline constexpr std::uint32_t kIntegrityMagic = 0x50524946u;
inline constexpr std::uint32_t kIntegrityVersion = 1;
/// [u32 magic][u32 version][u64 payload length][u32 CRC32C(payload)].
inline constexpr std::size_t kIntegrityFooterBytes = 20;

/// How a framed file read back.
enum class FileIntegrity : std::uint8_t {
  kOk = 0,
  /// No file at the path.
  kMissing = 1,
  /// Footer absent or length wrong: an interrupted (torn) publish, or
  /// a file that was never framed.
  kTorn = 2,
  /// Footer intact but the checksum disagrees: bit rot.
  kCorrupt = 3,
};

const char* FileIntegrityName(FileIntegrity integrity);

/// Appends the integrity footer to `payload`.
std::string WithIntegrityFooter(std::string payload);

/// Checks the footer of in-memory `bytes`; on OK, `*payload_size`
/// receives the framed payload's length (bytes minus footer). Errors
/// are kDataLoss with `path` in the message; `*integrity` (optional)
/// receives the classification either way.
Status VerifyIntegrityFooter(std::string_view bytes, const std::string& path,
                             std::size_t* payload_size,
                             FileIntegrity* integrity = nullptr);

/// Reads the whole file. kNotFound when missing, kIoError otherwise.
StatusOr<std::string> ReadFileBytes(const std::string& path);

/// WriteFileDurable with the integrity footer appended: the durable
/// publish discipline guards against crashes, the footer against rot.
Status WriteFileDurableChecksummed(const std::string& path,
                                   std::string_view payload,
                                   const std::string& tmp_suffix = ".tmp");

/// Reads a framed file and verifies the footer, returning the payload
/// without it. kNotFound (kMissing) when absent; kDataLoss (kTorn /
/// kCorrupt) when damaged. `*integrity` (optional) receives the
/// classification either way.
StatusOr<std::string> ReadFileVerified(const std::string& path,
                                       FileIntegrity* integrity = nullptr);

}  // namespace poisonrec

#endif  // POISONREC_UTIL_FSIO_H_
