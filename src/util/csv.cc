#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace poisonrec {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(SplitCsvLine(line));
  }
  return rows;
}

Status WriteCsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace poisonrec
