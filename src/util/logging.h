// Minimal logging + CHECK macros. CHECK failures indicate programmer
// errors (invariant violations) and abort; recoverable errors use Status
// (see util/status.h).
#ifndef POISONREC_UTIL_LOGGING_H_
#define POISONREC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

#include "util/status.h"

namespace poisonrec {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Fatal level aborts.
/// Messages below the global level are formatted but not printed; the
/// hot paths of the library do not log, so this simplicity is fine.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace poisonrec

#define POISONREC_LOG(level)                          \
  ::poisonrec::internal::LogMessage(                  \
      ::poisonrec::LogLevel::k##level, __FILE__, __LINE__)

#define POISONREC_CHECK(cond)                                         \
  if (!(cond))                                                        \
  ::poisonrec::internal::LogMessage(::poisonrec::LogLevel::kFatal,    \
                                    __FILE__, __LINE__)               \
      << "Check failed: " #cond " "

#define POISONREC_CHECK_OP(a, b, op)                                  \
  if (!((a)op(b)))                                                    \
  ::poisonrec::internal::LogMessage(::poisonrec::LogLevel::kFatal,    \
                                    __FILE__, __LINE__)               \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs "     \
      << (b) << ") "

#define POISONREC_CHECK_EQ(a, b) POISONREC_CHECK_OP(a, b, ==)
#define POISONREC_CHECK_NE(a, b) POISONREC_CHECK_OP(a, b, !=)
#define POISONREC_CHECK_LT(a, b) POISONREC_CHECK_OP(a, b, <)
#define POISONREC_CHECK_LE(a, b) POISONREC_CHECK_OP(a, b, <=)
#define POISONREC_CHECK_GT(a, b) POISONREC_CHECK_OP(a, b, >)
#define POISONREC_CHECK_GE(a, b) POISONREC_CHECK_OP(a, b, >=)

#define POISONREC_CHECK_OK(expr)                                      \
  do {                                                                \
    ::poisonrec::Status _st = (expr);                                 \
    POISONREC_CHECK(_st.ok()) << _st.ToString();                      \
  } while (false)

#endif  // POISONREC_UTIL_LOGGING_H_
