#include "util/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/crc32c.h"
#include "obs/event_log.h"

namespace poisonrec {

namespace {

/// SplitMix64: derives deterministic bit positions / tear lengths from
/// (seed, rule index) so a replayed schedule flips the same bit.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool IsWriteKind(FsFaultKind kind) {
  return kind == FsFaultKind::kEnospc || kind == FsFaultKind::kEio ||
         kind == FsFaultKind::kShortWrite || kind == FsFaultKind::kBitFlip;
}

}  // namespace

const char* FsFaultKindName(FsFaultKind kind) {
  switch (kind) {
    case FsFaultKind::kEnospc: return "enospc";
    case FsFaultKind::kEio: return "eio";
    case FsFaultKind::kShortWrite: return "short_write";
    case FsFaultKind::kFsyncFail: return "fsync_fail";
    case FsFaultKind::kTornRename: return "torn_rename";
    case FsFaultKind::kBitFlip: return "bit_flip";
  }
  return "unknown";
}

struct FaultyFs::Impl {
  struct ArmedRule {
    FsFaultRule rule;
    std::uint64_t seen = 0;
    bool fired = false;
  };

  mutable std::mutex mu;
  bool armed = false;
  std::uint64_t seed = 0;
  std::vector<ArmedRule> rules;
  FsFaultStats stats;

  /// First not-yet-fired rule of a matching kind whose match counter
  /// reaches nth for this operation. Returns nullptr when nothing
  /// fires. Caller holds mu.
  ArmedRule* Consult(const std::string& path,
                     bool (*kind_matches)(FsFaultKind)) {
    ArmedRule* firing = nullptr;
    for (ArmedRule& armed_rule : rules) {
      if (!kind_matches(armed_rule.rule.kind)) continue;
      if (!armed_rule.rule.path_substring.empty() &&
          path.find(armed_rule.rule.path_substring) == std::string::npos) {
        continue;
      }
      ++armed_rule.seen;
      if (firing == nullptr && !armed_rule.fired &&
          armed_rule.seen == armed_rule.rule.nth) {
        armed_rule.fired = true;
        ++stats.faults_injected;
        firing = &armed_rule;
      }
    }
    return firing;
  }

  std::uint64_t RuleNonce(const ArmedRule* rule) const {
    return Mix64(seed ^ Mix64(static_cast<std::uint64_t>(
                     rule - rules.data() + 1)));
  }
};

FaultyFs::Impl* FaultyFs::impl() {
  static Impl* impl = new Impl();  // leaked: process-lifetime singleton
  return impl;
}

FaultyFs& FaultyFs::Instance() {
  static FaultyFs instance;
  return instance;
}

void FaultyFs::Arm(std::uint64_t seed, std::vector<FsFaultRule> rules) {
  Impl* state = impl();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->armed = true;
    state->seed = seed;
    state->rules.clear();
    state->rules.reserve(rules.size());
    for (FsFaultRule& rule : rules) {
      state->rules.push_back({std::move(rule), 0, false});
    }
    state->stats = FsFaultStats{};
  }
  obs::EventLog::SetAppendFaultHook(&FaultyFs::EventAppendHook);
}

void FaultyFs::Disarm() {
  obs::EventLog::SetAppendFaultHook(nullptr);
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  state->armed = false;
  state->rules.clear();
}

bool FaultyFs::armed() const {
  Impl* state = Instance().impl();
  std::lock_guard<std::mutex> lock(state->mu);
  return state->armed;
}

FsFaultStats FaultyFs::stats() const {
  Impl* state = Instance().impl();
  std::lock_guard<std::mutex> lock(state->mu);
  return state->stats;
}

FaultyFs::WriteFault FaultyFs::OnWrite(const std::string& path,
                                       std::size_t size) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  WriteFault fault;
  if (!state->armed) return fault;
  ++state->stats.writes_seen;
  Impl::ArmedRule* rule = state->Consult(path, &IsWriteKind);
  if (rule == nullptr) return fault;
  fault.fire = true;
  fault.kind = rule->rule.kind;
  const std::uint64_t nonce = state->RuleNonce(rule);
  if (size > 0) {
    fault.short_bytes = std::max<std::size_t>(1, size / 2);
    fault.flip_bit = static_cast<std::size_t>(nonce % (size * 8));
  }
  return fault;
}

bool FaultyFs::OnFsync(const std::string& path) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  if (!state->armed) return false;
  ++state->stats.fsyncs_seen;
  return state->Consult(path, [](FsFaultKind kind) {
           return kind == FsFaultKind::kFsyncFail;
         }) != nullptr;
}

std::int64_t FaultyFs::OnRename(const std::string& to, std::size_t size) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  if (!state->armed) return -1;
  ++state->stats.renames_seen;
  Impl::ArmedRule* rule = state->Consult(to, [](FsFaultKind kind) {
    return kind == FsFaultKind::kTornRename;
  });
  if (rule == nullptr) return -1;
  if (size < 2) return 0;
  // Publish somewhere around [25%, 75%) of the source — always a
  // strict, non-empty prefix, so loaders face a plausible torn file.
  const std::uint64_t nonce = state->RuleNonce(rule);
  const std::size_t tear =
      size / 4 + nonce % std::max<std::size_t>(1, size / 2);
  return static_cast<std::int64_t>(
      std::clamp<std::size_t>(tear, 1, size - 1));
}

bool FaultyFs::EventAppendHook(const std::string& path, std::string* record) {
  Impl* state = Instance().impl();
  std::lock_guard<std::mutex> lock(state->mu);
  if (!state->armed) return true;
  ++state->stats.appends_seen;
  Impl::ArmedRule* rule = state->Consult(path, &IsWriteKind);
  if (rule == nullptr) return true;
  switch (rule->rule.kind) {
    case FsFaultKind::kEnospc:
    case FsFaultKind::kEio:
      // Append fails outright; the record is dropped.
      return false;
    case FsFaultKind::kShortWrite:
      // A torn append: the record's prefix lands without its newline,
      // so the NEXT append glues onto it — exactly the interior
      // corruption journal replay must skip and count.
      if (record->size() > 1) record->resize(record->size() / 2);
      return true;
    case FsFaultKind::kBitFlip: {
      if (record->size() > 1) {
        // Flip within the line body, sparing the trailing '\n' so the
        // damage stays inside one record.
        const std::size_t bits = (record->size() - 1) * 8;
        const std::size_t bit = state->RuleNonce(rule) % bits;
        (*record)[bit / 8] = static_cast<char>(
            static_cast<unsigned char>((*record)[bit / 8]) ^
            (1u << (bit % 8)));
      }
      return true;
    }
    default:
      return true;
  }
}

// ---------------------------------------------------------------------------
// Fault-aware primitives
// ---------------------------------------------------------------------------

namespace {

/// The raw EINTR/partial-write loop shared by the faulty and clean
/// paths (satellite of the integrity layer: a short write(2) is legal
/// on regular files under ENOSPC/RLIMIT_FSIZE and must be resumed, not
/// treated as success).
Status WriteLoop(int fd, const char* data, std::size_t size,
                 const std::string& path, std::size_t first_cap) {
  std::size_t written = 0;
  bool first = true;
  while (written < size) {
    std::size_t chunk = size - written;
    if (first && first_cap > 0) chunk = std::min(chunk, first_cap);
    first = false;
    const ::ssize_t n = ::write(fd, data + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int write_errno = errno;
      return Status::IoError("failed writing " + path + ": " +
                             std::strerror(write_errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteAllFd(int fd, const char* data, std::size_t size,
                  const std::string& path) {
  const FaultyFs::WriteFault fault =
      FaultyFs::Instance().OnWrite(path, size);
  if (!fault.fire) return WriteLoop(fd, data, size, path, 0);
  switch (fault.kind) {
    case FsFaultKind::kEnospc:
    case FsFaultKind::kEio: {
      // A realistic mid-stream failure: a prefix lands, then the error.
      if (size > 1) (void)WriteLoop(fd, data, size / 2, path, 0);
      const int fault_errno =
          fault.kind == FsFaultKind::kEnospc ? ENOSPC : EIO;
      return Status::IoError("failed writing " + path + ": " +
                             std::strerror(fault_errno) + " (injected)");
    }
    case FsFaultKind::kShortWrite:
      // Cap the first write() so the retry loop has to finish the job.
      return WriteLoop(fd, data, size, path, fault.short_bytes);
    case FsFaultKind::kBitFlip: {
      std::string copy(data, size);
      if (size > 0) {
        copy[fault.flip_bit / 8] = static_cast<char>(
            static_cast<unsigned char>(copy[fault.flip_bit / 8]) ^
            (1u << (fault.flip_bit % 8)));
      }
      return WriteLoop(fd, copy.data(), copy.size(), path, 0);
    }
    default:
      return WriteLoop(fd, data, size, path, 0);
  }
}

Status FsyncFd(int fd, const std::string& path) {
  if (FaultyFs::Instance().OnFsync(path)) {
    return Status::IoError("fsync failed for " + path + ": " +
                           std::strerror(EIO) + " (injected)");
  }
  if (::fsync(fd) != 0) {
    const int sync_errno = errno;
    return Status::IoError("fsync failed for " + path + ": " +
                           std::strerror(sync_errno));
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code size_ec;
  const std::uintmax_t from_size =
      std::filesystem::file_size(from, size_ec);
  const std::int64_t tear = FaultyFs::Instance().OnRename(
      to, size_ec ? 0 : static_cast<std::size_t>(from_size));
  if (tear >= 0) {
    // Simulate the crashed non-atomic rename: a prefix of the source
    // materialises at the destination, the source is gone, and the
    // caller is told everything went fine. Only verify-on-load can
    // catch this.
    std::ifstream in(from, std::ios::binary);
    std::string prefix(static_cast<std::size_t>(tear), '\0');
    in.read(prefix.data(), tear);
    std::ofstream out(to, std::ios::binary | std::ios::trunc);
    out.write(prefix.data(),
              static_cast<std::streamsize>(in.gcount()));
    out.close();
    std::error_code ec;
    std::filesystem::remove(from, ec);
    return Status::OK();
  }
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    return Status::IoError("cannot rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

namespace {

Status FsyncPath(const std::string& path, int open_flags, const char* what) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::IoError(std::string("cannot open ") + what + " " + path +
                           " for fsync: " + std::strerror(errno));
  }
  const Status status = FsyncFd(fd, path);
  ::close(fd);
  return status;
}

}  // namespace

Status FsyncFile(const std::string& path) {
  return FsyncPath(path, O_RDONLY, "file");
}

Status FsyncParentDirectory(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  return FsyncPath(dir.string(), O_RDONLY | O_DIRECTORY, "directory");
}

Status WriteFileDurable(const std::string& path, std::string_view contents,
                        const std::string& tmp_suffix) {
  const std::string tmp = path + tmp_suffix;
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp + " for durable write: " +
                           std::strerror(errno));
  }
  Status status = WriteAllFd(fd, contents.data(), contents.size(), tmp);
  if (status.ok()) status = FsyncFd(fd, tmp);
  ::close(fd);
  if (!status.ok()) {
    // Never leave a torn tmp behind a failed publish.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return status;
  }
  POISONREC_RETURN_NOT_OK(RenameFile(tmp, path));
  return FsyncParentDirectory(path);
}

// ---------------------------------------------------------------------------
// Whole-file integrity framing
// ---------------------------------------------------------------------------

const char* FileIntegrityName(FileIntegrity integrity) {
  switch (integrity) {
    case FileIntegrity::kOk: return "ok";
    case FileIntegrity::kMissing: return "missing";
    case FileIntegrity::kTorn: return "torn";
    case FileIntegrity::kCorrupt: return "corrupt";
  }
  return "unknown";
}

namespace {

void AppendU32(std::uint32_t value, std::string* out) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void AppendU64(std::uint64_t value, std::string* out) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

std::uint32_t ReadU32(const char* bytes) {
  std::uint32_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

std::uint64_t ReadU64(const char* bytes) {
  std::uint64_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

}  // namespace

std::string WithIntegrityFooter(std::string payload) {
  const std::uint32_t crc = obs::Crc32c(payload);
  const std::uint64_t payload_len = payload.size();
  payload.reserve(payload.size() + kIntegrityFooterBytes);
  AppendU32(kIntegrityMagic, &payload);
  AppendU32(kIntegrityVersion, &payload);
  AppendU64(payload_len, &payload);
  AppendU32(crc, &payload);
  return payload;
}

Status VerifyIntegrityFooter(std::string_view bytes, const std::string& path,
                             std::size_t* payload_size,
                             FileIntegrity* integrity) {
  const auto classify = [&](FileIntegrity result, std::string message) {
    if (integrity != nullptr) *integrity = result;
    if (result == FileIntegrity::kOk) return Status::OK();
    return Status::DataLoss(path + ": " + std::move(message));
  };
  if (bytes.size() < kIntegrityFooterBytes) {
    return classify(FileIntegrity::kTorn,
                    "shorter than the integrity footer (torn or unframed)");
  }
  const char* footer =
      bytes.data() + bytes.size() - kIntegrityFooterBytes;
  if (ReadU32(footer) != kIntegrityMagic) {
    return classify(FileIntegrity::kTorn,
                    "missing integrity footer (torn or unframed)");
  }
  const std::uint32_t version = ReadU32(footer + 4);
  if (version != kIntegrityVersion) {
    return classify(FileIntegrity::kCorrupt,
                    "unsupported integrity footer version " +
                        std::to_string(version));
  }
  const std::uint64_t payload_len = ReadU64(footer + 8);
  if (payload_len != bytes.size() - kIntegrityFooterBytes) {
    return classify(FileIntegrity::kTorn,
                    "integrity footer length mismatch (torn publish)");
  }
  const std::uint32_t want = ReadU32(footer + 16);
  const std::uint32_t got =
      obs::Crc32c(bytes.data(), static_cast<std::size_t>(payload_len));
  if (want != got) {
    return classify(FileIntegrity::kCorrupt,
                    "checksum mismatch (corrupt file)");
  }
  if (payload_size != nullptr) {
    *payload_size = static_cast<std::size_t>(payload_len);
  }
  return classify(FileIntegrity::kOk, "");
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("failed reading " + path);
  return std::move(buffer).str();
}

Status WriteFileDurableChecksummed(const std::string& path,
                                   std::string_view payload,
                                   const std::string& tmp_suffix) {
  return WriteFileDurable(path, WithIntegrityFooter(std::string(payload)),
                          tmp_suffix);
}

StatusOr<std::string> ReadFileVerified(const std::string& path,
                                       FileIntegrity* integrity) {
  StatusOr<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    if (integrity != nullptr) *integrity = FileIntegrity::kMissing;
    return bytes.status();
  }
  std::size_t payload_size = 0;
  POISONREC_RETURN_NOT_OK(
      VerifyIntegrityFooter(*bytes, path, &payload_size, integrity));
  bytes->resize(payload_size);
  return std::move(*bytes);
}

}  // namespace poisonrec
