// Table IV: among the four heuristic methods (Random, Popular, Middle,
// PowerItem), how often each achieves the best RecNum across the
// 8-ranker x 4-dataset testbeds. The paper's finding: no heuristic
// dominates — Popular and Middle win most often, but every method wins
// somewhere, motivating the adaptive attack. Testbeds where every method
// scores 0 (e.g., ItemPop on dense MovieLens) are excluded, as in the
// paper.
#include <cstdio>
#include <map>
#include <memory>

#include "attack/heuristics.h"
#include "bench/common.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Table IV: wins per heuristic across testbeds (scale=%.3g) ==\n\n",
      config.scale);

  std::vector<std::unique_ptr<attack::AttackMethod>> methods;
  methods.push_back(std::make_unique<attack::RandomAttack>());
  methods.push_back(std::make_unique<attack::PopularAttack>());
  methods.push_back(std::make_unique<attack::MiddleAttack>());
  methods.push_back(std::make_unique<attack::PowerItemAttack>());

  const std::vector<data::DatasetPreset> datasets = {
      data::DatasetPreset::kSteam, data::DatasetPreset::kMovieLens,
      data::DatasetPreset::kPhone, data::DatasetPreset::kClothing};

  // wins[method][dataset]
  std::map<std::string, std::map<std::string, int>> wins;
  std::size_t excluded = 0;
  for (data::DatasetPreset preset : datasets) {
    for (const std::string& ranker : config.rankers) {
      auto environment = MakeEnvironment(config, preset, ranker);
      double best = -1.0;
      std::string best_method;
      bool all_zero = true;
      for (const auto& method : methods) {
        const double rec_num = environment->Evaluate(
            method->GenerateAttack(*environment, config.seed ^ 0x91u));
        if (rec_num > 0.0) all_zero = false;
        if (rec_num > best) {
          best = rec_num;
          best_method = method->Name();
        }
      }
      if (all_zero) {
        ++excluded;  // paper: ItemPop on MovieLens excluded (all zero)
        continue;
      }
      ++wins[best_method][data::DatasetPresetName(preset)];
    }
  }

  std::vector<std::string> header = {"Method"};
  for (data::DatasetPreset p : datasets) {
    header.push_back(data::DatasetPresetName(p));
  }
  header.push_back("All");
  PrintTableHeader(header);
  std::vector<std::vector<std::string>> csv;
  csv.push_back(header);
  for (const auto& method : methods) {
    std::vector<std::string> row = {method->Name()};
    int total = 0;
    for (data::DatasetPreset p : datasets) {
      const int w = wins[method->Name()][data::DatasetPresetName(p)];
      row.push_back(std::to_string(w));
      total += w;
    }
    row.push_back(std::to_string(total));
    PrintTableRow(row);
    csv.push_back(row);
  }
  std::printf("\n(%zu all-zero testbeds excluded, as in the paper)\n",
              excluded);
  WriteCsvOutput(config, "table4_heuristic_wins.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
