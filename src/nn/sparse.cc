#include "nn/sparse.h"

#include <algorithm>
#include <map>

namespace poisonrec::nn {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  // Coalesce duplicates, then sort by (row, col).
  std::map<std::pair<std::size_t, std::size_t>, float> coalesced;
  for (const Triplet& t : triplets) {
    POISONREC_CHECK_LT(t.row, rows);
    POISONREC_CHECK_LT(t.col, cols);
    coalesced[{t.row, t.col}] += t.value;
  }
  row_offsets_.assign(rows + 1, 0);
  col_indices_.reserve(coalesced.size());
  values_.reserve(coalesced.size());
  for (const auto& [rc, v] : coalesced) {
    ++row_offsets_[rc.first + 1];
    col_indices_.push_back(rc.second);
    values_.push_back(v);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    row_offsets_[r + 1] += row_offsets_[r];
  }
}

Tensor SparseMatMul(const CsrMatrix& a, const Tensor& x) {
  POISONREC_CHECK_EQ(a.cols(), x.rows());
  const std::size_t n = x.cols();
  Tensor out = Tensor::Zeros(a.rows(), n);
  {
    float* od = out.mutable_data().data();
    const float* xd = x.data().data();
    for (std::size_t r = 0; r < a.rows(); ++r) {
      float* orow = od + r * n;
      for (std::size_t p = a.row_offsets()[r]; p < a.row_offsets()[r + 1];
           ++p) {
        const float v = a.values()[p];
        const float* xrow = xd + a.col_indices()[p] * n;
        for (std::size_t c = 0; c < n; ++c) orow[c] += v * xrow[c];
      }
    }
  }
  if (GradEnabled() && x.requires_grad()) {
    auto oi = out.impl();
    oi->requires_grad = true;
    oi->EnsureGrad();
    oi->parents.push_back(x.impl());
    x.impl()->EnsureGrad();
    internal::TensorImpl* xi = x.impl().get();
    internal::TensorImpl* oraw = oi.get();
    const CsrMatrix* am = &a;  // caller must keep the matrix alive
    oi->backward_fn = [am, xi, oraw, n]() {
      // dx = A^T * dout: scatter each sparse entry.
      for (std::size_t r = 0; r < am->rows(); ++r) {
        const float* grow = oraw->grad.data() + r * n;
        for (std::size_t p = am->row_offsets()[r];
             p < am->row_offsets()[r + 1]; ++p) {
          const float v = am->values()[p];
          float* xgrow = xi->grad.data() + am->col_indices()[p] * n;
          for (std::size_t c = 0; c < n; ++c) xgrow[c] += v * grow[c];
        }
      }
    };
  }
  return out;
}

}  // namespace poisonrec::nn
