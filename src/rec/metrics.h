// Ranking-quality metrics over the leave-one-out protocol (paper §IV-A's
// split). Used to validate that the 8 testbed rankers are trained to a
// sane quality before being attacked — an attack on a broken ranker says
// nothing — and exposed publicly so downstream users can tune FitConfig.
#ifndef POISONREC_REC_METRICS_H_
#define POISONREC_REC_METRICS_H_

#include <cstdint>

#include "data/dataset.h"
#include "rec/recommender.h"

namespace poisonrec::rec {

/// Hit-rate / NDCG of held-out items under sampled candidate ranking:
/// for each held-out (user, item), the item is ranked against
/// `num_negatives` sampled unseen items; HR@k counts how often it lands
/// in the top k, NDCG@k discounts by position.
struct RankingQuality {
  double hit_rate = 0.0;
  double ndcg = 0.0;
  std::size_t num_evaluated = 0;
};

struct EvalProtocol {
  std::size_t top_k = 10;
  std::size_t num_negatives = 50;
  std::uint64_t seed = 17;
};

/// Evaluates `ranker` (already fitted on the training split) on held-out
/// interactions. `full` is the unsplit log (used to exclude every seen
/// item from the negative draws).
RankingQuality EvaluateRanking(const Recommender& ranker,
                               const data::Dataset& full,
                               const std::vector<data::Interaction>& heldout,
                               const EvalProtocol& protocol = EvalProtocol());

/// Expected HR@k of a random scorer under the same protocol (the floor a
/// trained ranker must clear): k / (num_negatives + 1).
double RandomHitRate(const EvalProtocol& protocol);

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_METRICS_H_
