#include "rec/ngcf.h"

#include <algorithm>
#include <cmath>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace poisonrec::rec {

Ngcf::Net::Net(std::size_t num_nodes, std::size_t dim, std::size_t layers,
               Rng* rng)
    : nodes(num_nodes, dim, rng) {
  for (std::size_t l = 0; l < layers; ++l) {
    w1.emplace_back(dim, dim, rng);
    w2.emplace_back(dim, dim, rng);
  }
}

std::vector<nn::Tensor> Ngcf::Net::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Tensor& p : nodes.Parameters()) params.push_back(p);
  for (const nn::Linear& layer : w1) {
    for (const nn::Tensor& p : layer.Parameters()) params.push_back(p);
  }
  for (const nn::Linear& layer : w2) {
    for (const nn::Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

Ngcf::Ngcf(const FitConfig& config) : config_(config) {}

Ngcf::Ngcf(const Ngcf& other)
    : config_(other.config_),
      num_users_(other.num_users_),
      num_items_(other.num_items_),
      positives_(other.positives_),
      clean_(other.clean_),
      update_seed_(other.update_seed_) {
  if (other.net_ != nullptr) {
    Rng rng(0x3c6ef372ull);
    net_ = std::make_unique<Net>(num_users_ + num_items_,
                                 config_.embedding_dim, config_.num_layers,
                                 &rng);
    std::vector<nn::Tensor> dst = net_->Parameters();
    std::vector<nn::Tensor> src = other.net_->Parameters();
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i].CopyDataFrom(src[i]);
    }
    RebuildGraph();
    if (other.cached_final_.defined()) {
      cached_final_ = other.cached_final_.DeepCopy();
    }
  }
}

const nn::Tensor& Ngcf::NodeEmbeddings() const {
  POISONREC_CHECK(net_ != nullptr) << "NGCF not fitted";
  return net_->nodes.table();
}

void Ngcf::RebuildGraph() {
  const std::size_t n = num_users_ + num_items_;
  std::vector<std::size_t> degree(n, 0);
  std::size_t n_edges = 0;
  for (data::UserId u = 0; u < positives_.size(); ++u) {
    for (data::ItemId item : positives_[u]) {
      ++degree[u];
      ++degree[num_users_ + item];
      ++n_edges;
    }
  }
  std::vector<nn::CsrMatrix::Triplet> triplets;
  triplets.reserve(2 * n_edges);
  for (data::UserId u = 0; u < positives_.size(); ++u) {
    for (data::ItemId item : positives_[u]) {
      const std::size_t v = num_users_ + item;
      const float norm = 1.0f / std::sqrt(static_cast<float>(degree[u]) *
                                          static_cast<float>(degree[v]));
      triplets.push_back({u, v, norm});
      triplets.push_back({v, u, norm});
    }
  }
  laplacian_ = std::make_unique<nn::CsrMatrix>(n, n, std::move(triplets));
}

nn::Tensor Ngcf::Propagate() const {
  nn::Tensor e = net_->nodes.table();
  nn::Tensor final_rep = e;
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    nn::Tensor m = nn::SparseMatMul(*laplacian_, e);  // L E
    nn::Tensor sum_part = net_->w1[l].Forward(nn::Add(m, e));
    nn::Tensor bi_part = net_->w2[l].Forward(nn::Mul(m, e));
    e = nn::LeakyRelu(nn::Add(sum_part, bi_part));
    final_rep = nn::ConcatCols(final_rep, e);
  }
  return final_rep;
}

void Ngcf::RefreshCache() {
  nn::NoGradScope no_grad;
  cached_final_ = Propagate().DeepCopy();
}

void Ngcf::TrainEpochs(const std::vector<data::Interaction>& interactions,
                       std::size_t epochs, Rng* rng) {
  if (interactions.empty()) return;
  nn::Adam optimizer(net_->Parameters(), config_.learning_rate, 0.9f, 0.999f,
                     1e-8f, config_.weight_decay);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    nn::Tensor final_rep = Propagate();
    std::vector<std::size_t> users;
    std::vector<std::size_t> pos_nodes;
    std::vector<std::size_t> neg_nodes;
    users.reserve(interactions.size());
    for (const data::Interaction& ev : interactions) {
      users.push_back(ev.user);
      pos_nodes.push_back(num_users_ + ev.item);
      neg_nodes.push_back(
          num_users_ +
          SampleNegative(num_items_, positives_[ev.user], rng));
    }
    nn::Tensor eu = nn::Rows(final_rep, users);
    nn::Tensor ei = nn::Rows(final_rep, pos_nodes);
    nn::Tensor ej = nn::Rows(final_rep, neg_nodes);
    nn::Tensor pos_scores = nn::RowDot(eu, ei);
    nn::Tensor neg_scores = nn::RowDot(eu, ej);
    nn::Tensor loss = nn::BprLoss(pos_scores, neg_scores);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
}

void Ngcf::Fit(const data::Dataset& dataset) {
  Rng rng(config_.seed);
  num_users_ = dataset.num_users();
  num_items_ = dataset.num_items();
  net_ = std::make_unique<Net>(num_users_ + num_items_,
                               config_.embedding_dim, config_.num_layers,
                               &rng);
  positives_ = BuildPositiveSets(dataset);
  clean_ = dataset.AllInteractions();
  RebuildGraph();
  TrainEpochs(clean_, config_.epochs, &rng);
  RefreshCache();
  update_seed_ = rng.Fork();
}

void Ngcf::Update(const data::Dataset& poison) {
  POISONREC_CHECK(net_ != nullptr) << "Update before Fit";
  POISONREC_CHECK_EQ(poison.num_items(), num_items_);
  POISONREC_CHECK_LE(poison.num_users(), num_users_);
  Rng rng(update_seed_ ^ 0xa54ff53a5f1d36f1ull);
  MergePositiveSets(poison, &positives_);
  // The poison edges join the propagation graph.
  RebuildGraph();
  TrainEpochs(MixWithReplay(poison.AllInteractions(), clean_,
                            config_.update_replay_ratio, &rng),
              config_.update_epochs, &rng);
  RefreshCache();
}

std::vector<double> Ngcf::Score(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  POISONREC_CHECK(cached_final_.defined()) << "Score before Fit";
  const std::size_t dim = cached_final_.cols();
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (data::ItemId item : candidates) {
    const std::size_t node = num_users_ + item;
    double acc = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      acc += static_cast<double>(cached_final_.at(user, k)) *
             cached_final_.at(node, k);
    }
    scores.push_back(acc);
  }
  return scores;
}

std::unique_ptr<Recommender> Ngcf::Clone() const {
  return std::unique_ptr<Recommender>(new Ngcf(*this));
}

}  // namespace poisonrec::rec
