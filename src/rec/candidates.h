// Candidate Generation (paper §III-A1 / §IV-A). The paper uses a random
// candidate generator for evaluation efficiency: each user's candidate set
// is 92 randomly-selected original items plus the 8 target items; the
// Ranker then picks the top-10.
#ifndef POISONREC_REC_CANDIDATES_H_
#define POISONREC_REC_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/random.h"

namespace poisonrec::rec {

/// Candidate Generation component (paper §III-A1): selects the per-user
/// candidate set the Ranker scores. Every generator appends the target
/// items so RecNum measures how well the Ranker promotes them (§IV-A).
class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;

  /// The candidate set for one user. Must be deterministic per user so
  /// the RecNum reward is a stable function of the model.
  virtual std::vector<data::ItemId> Candidates(data::UserId user) const = 0;
};

/// Produces per-user candidate sets of `num_original` random items drawn
/// from [0, num_original_items) plus every target item — the paper's
/// evaluation protocol ("we use randomly-selected 92 original items and
/// the 8 target items").
class RandomCandidateGenerator : public CandidateGenerator {
 public:
  RandomCandidateGenerator(std::size_t num_original_items,
                           std::vector<data::ItemId> target_items,
                           std::size_t num_original, std::uint64_t seed);

  /// Deterministic per (seed, user): the same user always receives the
  /// same random candidates, which removes candidate-sampling noise from
  /// the RecNum reward signal.
  std::vector<data::ItemId> Candidates(data::UserId user) const override;

  std::size_t candidate_size() const {
    return num_original_ + targets_.size();
  }

 private:
  std::size_t num_original_items_;
  std::vector<data::ItemId> targets_;
  std::size_t num_original_;
  std::uint64_t seed_;
};

/// Personalized Candidate Generation (ablation of the paper's random
/// protocol): each user's original candidates are the items most
/// co-occurring with their history in the clean log (popularity-backed
/// when history is thin), precomputed at construction. Targets are still
/// appended, per the evaluation protocol. A harder surface for the
/// attacker: the original candidates are the user's strongest items
/// rather than a random (mostly long-tail) draw.
class PersonalizedCandidateGenerator : public CandidateGenerator {
 public:
  PersonalizedCandidateGenerator(const data::Dataset& clean_log,
                                 std::size_t num_original_items,
                                 std::vector<data::ItemId> target_items,
                                 std::size_t num_original);

  std::vector<data::ItemId> Candidates(data::UserId user) const override;

 private:
  std::vector<std::vector<data::ItemId>> per_user_;
  std::vector<data::ItemId> targets_;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_CANDIDATES_H_
