#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json.h"

namespace poisonrec::obs {

namespace {

// Uptime reference: the steady clock when the registry (or any metric)
// was first touched in this process. Captured eagerly from Global().
std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

double UptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessStart())
      .count();
}

double WallUnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace internal {

std::size_t ThisThreadShard() {
  // Sequential shard assignment wraps at kMetricShards; a persistent
  // thread pool (util/parallel) keeps its workers for the process
  // lifetime, so assignments stay well spread in practice.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

namespace {

// Relaxed fetch_add for atomic<double> without requiring C++20 library
// support for the member (implemented as a CAS loop for portability).
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace internal

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::BucketIndex(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    // Negative, zero, and NaN all collapse into the underflow bucket;
    // +inf clamps to the top.
    return std::isinf(v) && v > 0.0 ? kNumBuckets - 1 : 0;
  }
  const int exponent = std::ilogb(v);  // floor(log2(v))
  const long idx = static_cast<long>(exponent) - kMinExponent;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double Histogram::BucketLowerBound(std::size_t i) {
  if (i == 0) return 0.0;  // bucket 0 absorbs the full underflow range
  return std::ldexp(1.0, static_cast<int>(i) + kMinExponent);
}

double Histogram::BucketUpperBound(std::size_t i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i) + kMinExponent + 1);
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(&sum_, v);
  if (prev == 0) {
    // First observation seeds min/max; the CAS helpers below only ever
    // tighten, so a racing second observation still converges.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
  }
  internal::AtomicMin(&min_, v);
  internal::AtomicMax(&max_, v);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::SnapshotQuantile(const Snapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  if (q <= 0.0) return snapshot.min;
  if (q >= 1.0) return snapshot.max;
  const double target = q * static_cast<double>(snapshot.count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (snapshot.buckets[i] == 0) continue;
    const double in_bucket = static_cast<double>(snapshot.buckets[i]);
    if (cumulative + in_bucket >= target) {
      // Clamping to [min, max] only bites in the first and last occupied
      // buckets (min/max land inside their own buckets), where it turns
      // "somewhere in [2^k, 2^k+1)" into an exact endpoint for
      // concentrated mass and keeps the +inf top bucket bounded.
      const double lo = std::max(BucketLowerBound(i), snapshot.min);
      const double hi =
          std::max(lo, std::min(BucketUpperBound(i), snapshot.max));
      const double fraction = (target - cumulative) / in_bucket;
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return snapshot.max;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    ProcessStart();  // anchor the uptime clock at first registry use
    return new MetricsRegistry();  // never freed
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter(name));
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge(name));
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram(name));
  return slot.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"wall_unix\":";
  AppendJsonNumber(&out, WallUnixSeconds());
  out += ",\"uptime_seconds\":";
  AppendJsonNumber(&out, UptimeSeconds());
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    AppendJsonNumber(&out, counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    AppendJsonNumber(&out, gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    const Histogram::Snapshot s = histogram->TakeSnapshot();
    out += ":{\"count\":";
    AppendJsonNumber(&out, s.count);
    out += ",\"sum\":";
    AppendJsonNumber(&out, s.sum);
    out += ",\"min\":";
    AppendJsonNumber(&out, s.min);
    out += ",\"max\":";
    AppendJsonNumber(&out, s.max);
    out += ",\"p50\":";
    AppendJsonNumber(&out, Histogram::SnapshotQuantile(s, 0.50));
    out += ",\"p95\":";
    AppendJsonNumber(&out, Histogram::SnapshotQuantile(s, 0.95));
    out += ",\"p99\":";
    AppendJsonNumber(&out, Histogram::SnapshotQuantile(s, 0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "{\"ge\":";
      AppendJsonNumber(&out, Histogram::BucketLowerBound(i));
      out += ",\"lt\":";
      AppendJsonNumber(&out, Histogram::BucketUpperBound(i));
      out += ",\"count\":";
      AppendJsonNumber(&out, s.buckets[i]);
      out += "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::SnapshotText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "poisonrec_export_wall_unix %.17g\n",
                WallUnixSeconds());
  out += buf;
  std::snprintf(buf, sizeof(buf), "poisonrec_export_uptime_seconds %.17g\n",
                UptimeSeconds());
  out += buf;
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(counter->Value()));
    out += name;
    out += buf;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), " %.17g\n", gauge->Value());
    out += name;
    out += buf;
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->TakeSnapshot();
    std::snprintf(buf, sizeof(buf), "_count %llu\n",
                  static_cast<unsigned long long>(s.count));
    out += name;
    out += buf;
    std::snprintf(buf, sizeof(buf), "_sum %.17g\n", s.sum);
    out += name;
    out += buf;
    std::snprintf(buf, sizeof(buf), "_p50 %.17g\n",
                  Histogram::SnapshotQuantile(s, 0.50));
    out += name;
    out += buf;
    std::snprintf(buf, sizeof(buf), "_p95 %.17g\n",
                  Histogram::SnapshotQuantile(s, 0.95));
    out += name;
    out += buf;
    std::snprintf(buf, sizeof(buf), "_p99 %.17g\n",
                  Histogram::SnapshotQuantile(s, 0.99));
    out += name;
    out += buf;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      std::snprintf(buf, sizeof(buf), "_bucket{ge=\"%.17g\"} %llu\n",
                    Histogram::BucketLowerBound(i),
                    static_cast<unsigned long long>(s.buckets[i]));
      out += name;
      out += buf;
    }
  }
  return out;
}

namespace {

bool WriteWholeFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace

bool MetricsRegistry::WriteJson(const std::string& path) const {
  return WriteWholeFile(path, SnapshotJson() + "\n");
}

bool MetricsRegistry::WriteText(const std::string& path) const {
  return WriteWholeFile(path, SnapshotText());
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace poisonrec::obs
