// Checkpoint (de)serialization tests: round trips, error paths, and a
// policy-level save/restore.
#include "nn/serialize.h"

#include <cstdio>
#include <fstream>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/policy.h"
#include "nn/module.h"

namespace poisonrec::nn {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(1);
  Mlp a({4, 6, 2}, &rng);
  Mlp b({4, 6, 2}, &rng);  // different init
  const std::string path = TempPath("poisonrec_ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  ASSERT_TRUE(LoadParameters(path, b.Parameters()).ok());
  Tensor x = Tensor::Ones(2, 4);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ByValueParameterListRestoresCallersModel) {
  // LoadParameters takes std::vector<Tensor> by value on purpose: each
  // copied Tensor handle aliases the caller's storage, so writes land in
  // the model. This test pins down that contract — if Tensor ever gained
  // copy-on-write or deep-copy semantics, it would fail.
  Rng rng(21);
  Mlp model({3, 4, 2}, &rng);
  Mlp donor({3, 4, 2}, &rng);
  const std::string path = TempPath("poisonrec_ckpt_byvalue.bin");
  ASSERT_TRUE(SaveParameters(donor.Parameters(), path).ok());

  // Hold handles obtained BEFORE the load; the load mutates a copy of
  // this very vector.
  std::vector<Tensor> handles = model.Parameters();
  ASSERT_TRUE(LoadParameters(path, handles).ok());
  std::vector<Tensor> donor_params = donor.Parameters();
  for (std::size_t p = 0; p < handles.size(); ++p) {
    for (std::size_t i = 0; i < handles[p].size(); ++i) {
      EXPECT_FLOAT_EQ(handles[p].data()[i], donor_params[p].data()[i]);
    }
  }
  // And the model itself (fresh Parameters() call, fresh Forward) sees
  // the restored weights.
  Tensor x = Tensor::Ones(1, 3);
  Tensor y_model = model.Forward(x);
  Tensor y_donor = donor.Forward(x);
  for (std::size_t i = 0; i < y_model.size(); ++i) {
    EXPECT_FLOAT_EQ(y_model.data()[i], y_donor.data()[i]);
  }

  // Counter-example: detached copies do NOT write through to the model.
  Mlp untouched({3, 4, 2}, &rng);
  std::vector<Tensor> before;
  for (const Tensor& t : untouched.Parameters()) before.push_back(t.DeepCopy());
  std::vector<Tensor> detached;
  for (const Tensor& t : untouched.Parameters()) detached.push_back(t.DeepCopy());
  ASSERT_TRUE(LoadParameters(path, detached).ok());
  std::vector<Tensor> after = untouched.Parameters();
  for (std::size_t p = 0; p < after.size(); ++p) {
    for (std::size_t i = 0; i < after[p].size(); ++i) {
      EXPECT_FLOAT_EQ(after[p].data()[i], before[p].data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(2);
  Mlp a({4, 6, 2}, &rng);
  Mlp b({4, 5, 2}, &rng);
  const std::string path = TempPath("poisonrec_ckpt_mismatch.bin");
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  Status status = LoadParameters(path, b.Parameters());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchRejected) {
  Rng rng(3);
  Mlp a({4, 2}, &rng);
  Mlp b({4, 6, 2}, &rng);
  const std::string path = TempPath("poisonrec_ckpt_count.bin");
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  EXPECT_EQ(LoadParameters(path, b.Parameters()).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  Rng rng(4);
  Mlp m({2, 2}, &rng);
  EXPECT_EQ(LoadParameters("/nonexistent/ckpt.bin", m.Parameters()).code(),
            StatusCode::kIoError);
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("poisonrec_ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  Rng rng(5);
  Mlp m({2, 2}, &rng);
  EXPECT_EQ(LoadParameters(path, m.Parameters()).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, PeekShapes) {
  Rng rng(6);
  Linear layer(3, 5, &rng);
  const std::string path = TempPath("poisonrec_ckpt_peek.bin");
  ASSERT_TRUE(SaveParameters(layer.Parameters(), path).ok());
  auto shapes = PeekCheckpointShapes(path);
  ASSERT_TRUE(shapes.ok());
  ASSERT_EQ(shapes->size(), 2u);
  EXPECT_EQ((*shapes)[0].first, 3u);
  EXPECT_EQ((*shapes)[0].second, 5u);
  EXPECT_EQ((*shapes)[1].first, 1u);
  EXPECT_EQ((*shapes)[1].second, 5u);
  std::remove(path.c_str());
}

TEST(SerializeTest, PolicyCheckpointRestoresBehavior) {
  core::PolicyConfig config;
  config.embedding_dim = 8;
  config.action_space = core::ActionSpaceKind::kBcbtPopular;
  config.seed = 7;
  std::vector<data::ItemId> originals = {0, 1, 2, 3, 4, 5, 6};
  std::vector<data::ItemId> targets = {7, 8};
  core::Policy a(3, 9, originals, targets, config);
  config.seed = 8;  // different init
  core::Policy b(3, 9, originals, targets, config);

  const std::string path = TempPath("poisonrec_policy_ckpt.bin");
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  ASSERT_TRUE(LoadParameters(path, b.Parameters()).ok());

  Rng rng_a(11);
  Rng rng_b(11);
  auto ta = a.SampleEpisode(5, &rng_a);
  auto tb = b.SampleEpisode(5, &rng_b);
  for (std::size_t n = 0; n < ta.size(); ++n) {
    for (std::size_t t = 0; t < 5; ++t) {
      EXPECT_EQ(ta[n].steps[t].item, tb[n].steps[t].item);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace poisonrec::nn
