// End-to-end TrainStep comparison of the batched attacker engine against
// its two ancestors, swept over attacker counts N. For each N the bench
// runs the full Algorithm 1 step (episode rollouts -> black-box reward
// queries -> K PPO epochs) as:
//
//   per_row   — the historical baseline: every attacker row advanced by
//               its own 1×d matmuls (~6N tiny tape nodes per timestep),
//               fresh tapes every epoch. Speedup denominator and
//               identity oracle; runs a capped number of steps (it is
//               the slow one) and is compared per-step.
//   reference — per-episode batched rows, fresh tapes, no arena (the
//               pre-batched-engine seed engine) at T threads.
//   batched   — stacked rollouts, recorded-graph reuse, arena, at
//               1, 2, and T threads.
//
// Every configuration must produce the identical reward sequence over
// the steps it runs: the engines are bit-identical by construction
// (per-episode RNG streams, row-partition-deterministic kernels, frozen
// backward schedules, StackRows' ordered backward), and the bench fails
// hard on the first mismatch. The headline metric is the per-step
// update+sample speedup over the per_row baseline — the phases the
// engine rework touches (query time is the black-box platform's, not
// the attacker's).
//
//   POISONREC_THREADS        threaded runs' thread count (default 4)
//   POISONREC_STEPS          timed steps per run (default 25; CI uses 2)
//   POISONREC_BASELINE_STEPS per_row baseline step cap (default 4)
//   POISONREC_ATTACKER_SWEEP comma list of N values (default 20,200,2000)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "nn/kernels.h"
#include "util/timer.h"

namespace poisonrec::bench {
namespace {

enum class Engine { kPerRow, kReference, kBatched };

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kPerRow:
      return "per_row";
    case Engine::kReference:
      return "reference";
    case Engine::kBatched:
      return "batched";
  }
  return "?";
}

struct RunResult {
  std::size_t steps = 0;
  double total_seconds = 0.0;
  double sample_seconds = 0.0;
  double query_seconds = 0.0;
  double update_seconds = 0.0;
  std::vector<double> mean_rewards;
};

RunResult RunCampaign(const BenchConfig& config, std::size_t num_attackers,
                      std::size_t num_threads, Engine engine,
                      std::size_t steps) {
  // Kernel threading and sampling/eval threading follow the same knob,
  // mirroring what `poisonrec campaign --num-threads` does.
  nn::SetNumThreads(num_threads);
  BenchConfig sized = config;
  sized.num_attackers = num_attackers;
  auto env = MakeEnvironment(sized, data::DatasetPreset::kSteam, "ItemPop");
  core::PoisonRecConfig pr = MakePoisonRecConfig(
      sized, core::ActionSpaceKind::kBcbtPopular, sized.seed);
  pr.num_threads = num_threads;
  pr.parallel_sampling = true;
  pr.parallel_rewards = num_threads > 1;
  if (engine != Engine::kBatched) {
    pr.engine.batched_sampling = false;
    pr.engine.reuse_update_graph = false;
    pr.engine.tensor_arena = false;
    pr.engine.per_row_recurrence = engine == Engine::kPerRow;
  }
  core::PoisonRecAttacker attacker(env.get(), pr);

  RunResult result;
  result.steps = steps;
  for (std::size_t s = 0; s < steps; ++s) {
    const core::TrainStepStats stats = attacker.TrainStep();
    result.total_seconds += stats.seconds;
    result.sample_seconds += stats.sample_seconds;
    result.query_seconds += stats.query_seconds;
    result.update_seconds += stats.update_seconds;
    result.mean_rewards.push_back(stats.mean_reward);
  }
  nn::SetNumThreads(0);
  return result;
}

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::vector<std::size_t> EnvSizeList(const char* name,
                                     std::vector<std::size_t> fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  std::vector<std::size_t> out;
  std::string token;
  for (const char* p = v;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        out.push_back(
            static_cast<std::size_t>(std::strtoull(token.c_str(), nullptr, 10)));
        token.clear();
      }
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return out.empty() ? fallback : out;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

// Training is deterministic per step index, so the first
// min(a.steps, b.steps) rewards of any two runs are comparable even
// when the slower run was cut short.
std::size_t CountMismatches(const RunResult& a, const RunResult& b) {
  const std::size_t steps =
      std::min(a.mean_rewards.size(), b.mean_rewards.size());
  std::size_t mismatches = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    if (a.mean_rewards[s] != b.mean_rewards[s]) ++mismatches;
  }
  return mismatches;
}

int Main() {
  const BenchConfig config = LoadBenchConfig();
  const std::size_t threads = EnvSize("POISONREC_THREADS", 4);
  const std::size_t steps = config.training_steps;
  const std::size_t baseline_steps =
      std::min(steps, EnvSize("POISONREC_BASELINE_STEPS", 4));
  const std::vector<std::size_t> sweep =
      EnvSizeList("POISONREC_ATTACKER_SWEEP", {20, 200, 2000});

  PrintTableHeader({"attackers", "engine", "threads", "steps", "total_s",
                    "sample_s", "query_s", "update_s", "upd+smp_speedup",
                    "mismatches"});
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"attackers", "engine", "threads", "steps", "total_s",
                  "sample_s", "query_s", "update_s", "update_sample_speedup",
                  "reward_mismatches"});

  std::size_t total_mismatches = 0;
  for (const std::size_t n : sweep) {
    const RunResult baseline =
        RunCampaign(config, n, threads, Engine::kPerRow, baseline_steps);
    const RunResult reference =
        RunCampaign(config, n, threads, Engine::kReference, steps);
    struct BatchedRun {
      std::size_t threads;
      RunResult result;
    };
    std::vector<BatchedRun> batched;
    for (const std::size_t t : std::vector<std::size_t>{1, 2, threads}) {
      batched.push_back(
          {t, RunCampaign(config, n, t, Engine::kBatched, steps)});
    }

    const double baseline_per_step =
        (baseline.sample_seconds + baseline.update_seconds) /
        static_cast<double>(baseline.steps);
    const auto emit = [&](Engine engine, std::size_t t, const RunResult& r,
                          std::size_t mismatches) {
      // The speedup the engine rework is accountable for: per-step
      // sample+update against the per-row baseline at the bench's
      // threaded setting.
      const double per_step = (r.sample_seconds + r.update_seconds) /
                              static_cast<double>(r.steps);
      const double speedup = per_step > 0.0 ? baseline_per_step / per_step
                                            : 0.0;
      PrintTableRow({std::to_string(n), EngineName(engine),
                     std::to_string(t), std::to_string(r.steps),
                     Fmt(r.total_seconds), Fmt(r.sample_seconds),
                     Fmt(r.query_seconds), Fmt(r.update_seconds),
                     Fmt(speedup), std::to_string(mismatches)});
      rows.push_back({std::to_string(n), EngineName(engine),
                      std::to_string(t), std::to_string(r.steps),
                      Fmt(r.total_seconds), Fmt(r.sample_seconds),
                      Fmt(r.query_seconds), Fmt(r.update_seconds),
                      Fmt(speedup), std::to_string(mismatches)});
    };
    emit(Engine::kPerRow, threads, baseline, 0);
    {
      const std::size_t mismatches = CountMismatches(baseline, reference);
      total_mismatches += mismatches;
      emit(Engine::kReference, threads, reference, mismatches);
    }
    for (const BatchedRun& run : batched) {
      const std::size_t mismatches = CountMismatches(baseline, run.result) +
                                     CountMismatches(reference, run.result);
      total_mismatches += mismatches;
      emit(Engine::kBatched, run.threads, run.result, mismatches);
    }
  }

  if (total_mismatches > 0) {
    std::printf("FAIL: %zu reward mismatches between engines/thread counts\n",
                total_mismatches);
  }
  WriteCsvOutput(config, "train_step_timing.csv", rows);
  WriteJsonOutput(config, "train_step_timing.json", rows);

  // An engine- or thread-count-dependent reward sequence is a
  // correctness bug, not a perf regression — fail loudly.
  return total_mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace poisonrec::bench

int main() { return poisonrec::bench::Main(); }
