// Process-wide metrics registry: named Counters, Gauges, and Histograms
// with a lock-free fast path, aggregated only when a snapshot is taken.
//
// Design: instrumentation sites fetch a metric pointer once (registration
// takes the registry mutex) and cache it in a function-local static, so
// the steady-state cost of an increment is one relaxed atomic add on a
// cache-line-padded shard picked by the calling thread. Shards exist
// because the hottest counters (the GEMM call/flop counters in
// nn/kernels.cc) are bumped concurrently from every ParallelFor worker;
// a single atomic would ping-pong its cache line across cores.
//
// Metric naming convention (docs/observability.md):
//   poisonrec_<layer>_<what>[_total]
// where `_total` marks monotonic counters (Prometheus style), e.g.
// poisonrec_gemm_calls_total, poisonrec_ppo_reward_mean,
// poisonrec_defense_bans_total.
//
// Snapshots are exported as JSON ({"counters":{...},"gauges":{...},
// "histograms":{...}}) or a Prometheus-like text format. Counter reads
// during concurrent increments are linearizable per shard, not across
// shards — a snapshot may miss increments that race with it, never
// double-count.
#ifndef POISONREC_OBS_METRICS_H_
#define POISONREC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace poisonrec::obs {

/// Shard count for striped counters. Power of two; sized for many more
/// cores than the bench boxes have without bloating each counter.
inline constexpr std::size_t kMetricShards = 16;

namespace internal {
/// Stable per-thread shard index in [0, kMetricShards).
std::size_t ThisThreadShard();

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace internal

/// Monotonic counter. Increment is one relaxed fetch_add on this
/// thread's shard; Value() sums the shards.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset();

  std::string name_;
  std::array<internal::PaddedU64, kMetricShards> shards_;
};

/// Last-write-wins scalar (single atomic double; writers race benignly).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed log2-scale buckets: bucket i covers
/// [2^(i + kMinExponent), 2^(i + kMinExponent + 1)), so boundaries are
/// exact powers of two and bucketing needs no float comparisons beyond
/// an exponent extraction. Values <= 0 (and subnormal underflow) land in
/// bucket 0; values beyond the top boundary clamp into the last bucket.
/// The default range [2^-30, 2^34) covers nanosecond-scale spans through
/// tens-of-billions RecNum counts.
class Histogram {
 public:
  static constexpr int kMinExponent = -30;
  static constexpr std::size_t kNumBuckets = 64;

  /// Bucket index for a value (see the class comment for the mapping).
  static std::size_t BucketIndex(double v);
  /// Inclusive lower bound of bucket i (0 for bucket 0, which also
  /// absorbs everything below 2^kMinExponent).
  static double BucketLowerBound(std::size_t i);
  /// Exclusive upper bound of bucket i (+inf for the last bucket).
  static double BucketUpperBound(std::size_t i);

  void Observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    std::array<std::uint64_t, kNumBuckets> buckets{};
  };
  Snapshot TakeSnapshot() const;

  /// Quantile estimate from the bucketed snapshot: linear interpolation
  /// of rank q*count within the covering log2 bucket, with the bucket's
  /// bounds clamped to the observed [min, max] (so a single-valued
  /// histogram reports the exact value and the open-ended top bucket
  /// never extrapolates past max). 0 when the snapshot is empty; exact
  /// only when mass is concentrated at bucket edges, otherwise an
  /// estimate with at most one-bucket (2x) resolution.
  static double SnapshotQuantile(const Snapshot& snapshot, double q);

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  void Reset();

  std::string name_;
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// The process-wide registry. Get* registers on first use and returns a
/// stable pointer; callers cache it (typically in a function-local
/// static) so the mutex is only ever taken on the first call per site.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// One JSON object: {"wall_unix":..,"uptime_seconds":..,
  /// "counters":{name:value,...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,
  /// "p50":..,"p95":..,"p99":..,
  /// "buckets":[{"ge":..,"lt":..,"count":..},...]}}}. Zero-count
  /// histogram buckets are omitted; p50/p95/p99 are
  /// Histogram::SnapshotQuantile estimates.
  ///
  /// Timestamp contract: `wall_unix` (system clock, unix-epoch seconds
  /// at snapshot time) is comparable across processes and machines —
  /// it is the field fleet aggregation (orch/status.h) trusts for
  /// staleness math. `uptime_seconds` (steady clock since this process
  /// first touched the registry) is monotonic but only meaningful
  /// within one process.
  std::string SnapshotJson() const;
  /// Prometheus-like lines: "<name> <value>" (histograms expand into
  /// _count/_sum/_p50/_p95/_p99 plus per-bucket lines), preceded by
  /// poisonrec_export_wall_unix / poisonrec_export_uptime_seconds
  /// pseudo-metrics carrying the same timestamp contract as
  /// SnapshotJson.
  std::string SnapshotText() const;
  /// Writes SnapshotJson()/SnapshotText() to `path`. False on I/O error.
  bool WriteJson(const std::string& path) const;
  bool WriteText(const std::string& path) const;

  /// Zeroes every registered metric (benches and tests; racing
  /// increments are not lost atomically, just applied before or after).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // std::map: stable addresses and deterministic (sorted) export order.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace poisonrec::obs

#endif  // POISONREC_OBS_METRICS_H_
