#include "util/guard.h"

#include <cmath>
#include <fstream>

#include "obs/json.h"
#include "util/logging.h"

namespace poisonrec {

using obs::AppendJsonNumber;
using obs::AppendJsonString;

const char* GuardEventKindName(GuardEventKind kind) {
  switch (kind) {
    case GuardEventKind::kNonFiniteReward:
      return "non_finite_reward";
    case GuardEventKind::kNonFiniteLogit:
      return "non_finite_logit";
    case GuardEventKind::kNonFiniteLoss:
      return "non_finite_loss";
    case GuardEventKind::kNonFiniteGradient:
      return "non_finite_gradient";
    case GuardEventKind::kNonFiniteParameter:
      return "non_finite_parameter";
    case GuardEventKind::kNonFiniteOptimizerState:
      return "non_finite_optimizer_state";
    case GuardEventKind::kGradNormExplosion:
      return "grad_norm_explosion";
    case GuardEventKind::kEntropyCollapse:
      return "entropy_collapse";
    case GuardEventKind::kKlDivergence:
      return "kl_divergence";
    case GuardEventKind::kAccountPoolExhausted:
      return "account_pool_exhausted";
  }
  return "?";
}

void GuardVerdict::Add(GuardEventKind kind, double value, double threshold,
                       std::string detail) {
  events.push_back(GuardEvent{kind, value, threshold, std::move(detail)});
}

std::string GuardVerdict::Summary() const {
  if (events.empty()) return "clean";
  std::string out;
  for (const GuardEvent& e : events) {
    if (!out.empty()) out += ", ";
    out += GuardEventKindName(e.kind);
    if (!e.detail.empty()) {
      out += "(";
      out += e.detail;
      out += ")";
    }
  }
  return out;
}

FiniteSweep SweepFinite(const float* data, std::size_t n) {
  FiniteSweep sweep;
  sweep.checked = n;
  // Fast path: a running double sum is finite iff every element is (a
  // NaN/Inf element propagates, and finite floats cannot overflow the
  // double accumulator). Branchless, so the clean case vectorizes.
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += data[i];
  if (std::isfinite(sum)) return sweep;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = data[i];
    if (std::isfinite(v)) continue;
    if (sweep.bad() == 0) sweep.first_bad = i;
    if (std::isnan(v)) {
      ++sweep.nan;
    } else {
      ++sweep.inf;
    }
  }
  return sweep;
}

FiniteSweep SweepFinite(const std::vector<float>& values) {
  return SweepFinite(values.data(), values.size());
}

FiniteSweep SweepFinite(const std::vector<double>& values) {
  FiniteSweep sweep;
  sweep.checked = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (std::isfinite(v)) continue;
    if (sweep.bad() == 0) sweep.first_bad = i;
    if (std::isnan(v)) {
      ++sweep.nan;
    } else {
      ++sweep.inf;
    }
  }
  return sweep;
}

IncidentLog::IncidentLog(std::size_t capacity) : capacity_(capacity) {
  POISONREC_CHECK_GT(capacity_, 0u);
}

void IncidentLog::set_capacity(std::size_t capacity) {
  POISONREC_CHECK_GT(capacity, 0u);
  capacity_ = capacity;
  while (incidents_.size() > capacity_) incidents_.pop_front();
}

void IncidentLog::set_sink_path(std::string path) {
  if (path != sink_path_) {
    sink_.Close();
    sink_warned_ = false;
  }
  sink_path_ = std::move(path);
}

void IncidentLog::Record(std::size_t step, const GuardEvent& event) {
  GuardIncident incident{step, event};
  if (!sink_path_.empty()) {
    if (!sink_.is_open() && !sink_warned_ &&
        !sink_.Open(sink_path_, /*truncate=*/false)) {
      sink_warned_ = true;
      POISONREC_LOG(Warning) << "incident log sink " << sink_path_
                             << " is not writable; keeping incidents "
                                "in memory only";
    }
    if (sink_.is_open()) sink_.Append(IncidentToJson(incident));
  }
  if (event_log_ != nullptr) {
    event_log_->Append(IncidentToEventJson(incident));
  }
  incidents_.push_back(std::move(incident));
  ++total_recorded_;
  while (incidents_.size() > capacity_) incidents_.pop_front();
}

void IncidentLog::Clear() {
  incidents_.clear();
  total_recorded_ = 0;
}

std::string IncidentToJson(const GuardIncident& incident) {
  std::string out = "{\"step\":";
  out += std::to_string(incident.step);
  out += ",\"kind\":";
  AppendJsonString(&out, GuardEventKindName(incident.event.kind));
  out += ",\"value\":";
  AppendJsonNumber(&out, incident.event.value);
  out += ",\"threshold\":";
  AppendJsonNumber(&out, incident.event.threshold);
  out += ",\"detail\":";
  AppendJsonString(&out, incident.event.detail);
  out += "}";
  return out;
}

std::string IncidentToEventJson(const GuardIncident& incident) {
  obs::JsonObjectBuilder b;
  b.Str("type", "guard")
      .Int("step", incident.step)
      .Str("kind", GuardEventKindName(incident.event.kind))
      .Num("value", incident.event.value)
      .Num("threshold", incident.event.threshold)
      .Str("detail", incident.event.detail);
  return std::move(b).Finish();
}

std::string IncidentLog::ToJsonl() const {
  std::string out;
  for (const GuardIncident& incident : incidents_) {
    out += IncidentToJson(incident);
    out += "\n";
  }
  return out;
}

Status IncidentLog::WriteJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJsonl();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace poisonrec
