file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_defense.dir/detector.cc.o"
  "CMakeFiles/poisonrec_defense.dir/detector.cc.o.d"
  "libpoisonrec_defense.a"
  "libpoisonrec_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
