// Recommender tests. A parameterized suite runs the behavioral contract
// against all 8 algorithms: fit beats random ranking, clones are
// independent, incremental poisoning promotes clicked items. Per-model
// tests cover algorithm-specific semantics.
#include "rec/registry.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rec/bpr.h"
#include "rec/covisitation.h"
#include "rec/itempop.h"
#include "rec/pmf.h"
#include "util/random.h"

namespace poisonrec::rec {
namespace {

// Small but structured log: 60 users, 30 items (2 reserved cold), cluster
// structure for sequence-aware models.
data::Dataset TestLog() {
  data::SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 28;
  cfg.num_interactions = 900;
  cfg.num_clusters = 4;
  cfg.seed = 21;
  data::Dataset base = data::GenerateSynthetic(cfg);
  data::Dataset padded(72, 30);  // room for 12 fake users + 2 cold items
  for (data::UserId u = 0; u < base.num_users(); ++u) {
    padded.AddSequence(u, base.Sequence(u));
  }
  return padded;
}

FitConfig FastConfig() {
  FitConfig cfg;
  cfg.embedding_dim = 8;
  cfg.epochs = 6;
  cfg.update_epochs = 4;
  cfg.learning_rate = 0.05f;
  cfg.seed = 31;
  return cfg;
}

class AllRecommendersTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllRecommendersTest, FactoryProducesCorrectName) {
  auto rec = MakeRecommender(GetParam(), FastConfig());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->Name(), GetParam());
}

TEST_P(AllRecommendersTest, ScoresAlignWithCandidates) {
  auto rec = MakeRecommender(GetParam(), FastConfig()).value();
  data::Dataset log = TestLog();
  rec->Fit(log);
  std::vector<data::ItemId> cands = {0, 5, 29, 7};
  auto scores = rec->Score(3, cands);
  EXPECT_EQ(scores.size(), cands.size());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_P(AllRecommendersTest, TopKReturnsKDistinctCandidates) {
  auto rec = MakeRecommender(GetParam(), FastConfig()).value();
  data::Dataset log = TestLog();
  rec->Fit(log);
  std::vector<data::ItemId> cands;
  for (data::ItemId i = 0; i < 20; ++i) cands.push_back(i);
  auto top = rec->RecommendTopK(2, cands, 5);
  ASSERT_EQ(top.size(), 5u);
  std::vector<data::ItemId> sorted = top;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (data::ItemId i : top) {
    EXPECT_TRUE(std::find(cands.begin(), cands.end(), i) != cands.end());
  }
}

TEST_P(AllRecommendersTest, CloneScoresIdentically) {
  auto rec = MakeRecommender(GetParam(), FastConfig()).value();
  data::Dataset log = TestLog();
  rec->Fit(log);
  auto clone = rec->Clone();
  std::vector<data::ItemId> cands = {1, 4, 9, 16, 25};
  auto a = rec->Score(7, cands);
  auto b = clone->Score(7, cands);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << GetParam();
  }
}

TEST_P(AllRecommendersTest, UpdateOnCloneLeavesOriginalUntouched) {
  auto rec = MakeRecommender(GetParam(), FastConfig()).value();
  data::Dataset log = TestLog();
  rec->Fit(log);
  std::vector<data::ItemId> cands = {1, 4, 9, 29};
  auto before = rec->Score(7, cands);
  auto clone = rec->Clone();
  data::Dataset poison(72, 30);
  for (data::UserId u = 60; u < 64; ++u) {
    for (int c = 0; c < 10; ++c) poison.Add(u, 29);
  }
  clone->Update(poison);
  auto after_original = rec->Score(7, cands);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after_original[i]) << GetParam();
  }
}

// Behavioral contract: alternating fake clicks on a cold item and the
// most popular items (the classic shilling pattern) improve the cold
// item's average rank within a fixed candidate slate, for every
// algorithm. For the latent-factor models the effect is two-hop —
// attacker factors align with the popular direction, dragging the
// promoted item's embedding with them — which is exactly why the paper's
// Popular Attack beats Random Attack on those models.
TEST_P(AllRecommendersTest, PoisoningPromotesColdItem) {
  FitConfig cfg = FastConfig();
  cfg.update_epochs = 16;
  auto rec = MakeRecommender(GetParam(), cfg).value();
  data::Dataset log = TestLog();
  rec->Fit(log);
  const data::ItemId promoted = 28;  // cold
  const std::vector<data::ItemId> slate = {promoted, 29, 3,  6,  9, 12,
                                           15,       18, 21, 24, 27, 1};
  const int n_users = 20;
  auto measure = [&]() {
    double rank_total = 0.0;
    int control_wins = 0;  // promoted strictly beats the untouched cold 29
    for (data::UserId u = 0; u < n_users; ++u) {
      auto scores = rec->Score(u, slate);
      int rank = 0;
      for (std::size_t i = 1; i < slate.size(); ++i) {
        if (scores[i] > scores[0]) ++rank;
      }
      rank_total += rank;
      if (scores[0] > scores[1]) ++control_wins;  // slate[1] == item 29
    }
    return std::make_pair(rank_total / n_users, control_wins);
  };

  const auto [before, wins_before] = measure();
  const auto pops = log.ItemsByPopularity();
  const data::ItemId top1 = pops[pops.size() - 1];
  const data::ItemId top2 = pops[pops.size() - 2];
  data::Dataset poison(72, 30);
  for (data::UserId u = 60; u < 68; ++u) {
    for (int c = 0; c < 16; ++c) {
      poison.Add(u, c % 2 == 0 ? promoted : (c % 4 == 1 ? top1 : top2));
    }
  }
  rec->Update(poison);
  const auto [after, wins_after] = measure();
  // Universal contract: (a) the promoted item's mean rank never worsens,
  // and (b) either the rank strictly improves or the promoted item
  // strictly gains wins against the untouched cold control. How far the
  // rank moves is model-specific: ItemPop/CoVisitation jump to the top,
  // while ItemKNN's cosine damping makes it sybil-resistant at this
  // fleet size (rank flat, control wins up).
  EXPECT_LE(after, before + 1e-9)
      << GetParam() << " rank worsened (" << before << " -> " << after
      << ")";
  EXPECT_TRUE(after < before - 0.5 || wins_after > wins_before)
      << GetParam() << " showed no promotion: rank " << before << " -> "
      << after << ", control wins " << wins_before << " -> " << wins_after;
}

TEST_P(AllRecommendersTest, FittedBeatsColdItemsOnPopular) {
  // After fitting, the most popular item should outrank a cold item for
  // most users (all 8 algorithms encode popularity one way or another).
  auto rec = MakeRecommender(GetParam(), FastConfig()).value();
  data::Dataset log = TestLog();
  rec->Fit(log);
  const data::ItemId top_item = log.ItemsByPopularity().back();
  const data::ItemId cold_item = 29;
  int wins = 0;
  const int n_users = 20;
  for (data::UserId u = 0; u < n_users; ++u) {
    auto scores = rec->Score(u, {top_item, cold_item});
    if (scores[0] > scores[1]) ++wins;
  }
  EXPECT_GE(wins, 14) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AllRecommendersTest,
                         ::testing::ValuesIn(ExtendedRecommenderNames()),
                         [](const auto& info) { return info.param; });

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto rec = MakeRecommender("svd++");
  EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, NamesListHasEight) {
  EXPECT_EQ(AllRecommenderNames().size(), 8u);
}

TEST(RegistryTest, ExtendedListAddsItemKnn) {
  EXPECT_EQ(ExtendedRecommenderNames().size(), 9u);
  EXPECT_EQ(ExtendedRecommenderNames().back(), "ItemKNN");
  EXPECT_TRUE(MakeRecommender("ItemKNN").ok());
}

TEST(RegistryTest, CaseInsensitive) {
  EXPECT_TRUE(MakeRecommender("itempop").ok());
  EXPECT_TRUE(MakeRecommender("NEUMF").ok());
}

// -- ItemPop specifics ------------------------------------------------------

TEST(ItemPopTest, ScoresEqualCounts) {
  data::Dataset d(2, 3);
  d.AddSequence(0, {0, 0, 1});
  ItemPop pop;
  pop.Fit(d);
  auto scores = pop.Score(0, {0, 1, 2});
  EXPECT_DOUBLE_EQ(scores[0], 2.0);
  EXPECT_DOUBLE_EQ(scores[1], 1.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

TEST(ItemPopTest, UpdateAddsCounts) {
  data::Dataset d(2, 3);
  d.Add(0, 0);
  ItemPop pop;
  pop.Fit(d);
  data::Dataset poison(2, 3);
  poison.Add(1, 2);
  poison.Add(1, 2);
  pop.Update(poison);
  auto scores = pop.Score(0, {0, 2});
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  EXPECT_DOUBLE_EQ(scores[1], 2.0);
}

TEST(ItemPopTest, NonPersonalized) {
  data::Dataset log = TestLog();
  ItemPop pop;
  pop.Fit(log);
  auto a = pop.Score(0, {1, 2, 3});
  auto b = pop.Score(42, {1, 2, 3});
  EXPECT_EQ(a, b);
}

// -- CoVisitation specifics -------------------------------------------------

TEST(CoVisitationTest, AdjacentClicksFormEdges) {
  data::Dataset d(1, 4);
  d.AddSequence(0, {0, 1, 2});
  CoVisitation cv;
  cv.Fit(d);
  EXPECT_DOUBLE_EQ(cv.CoVisits(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(cv.CoVisits(1, 0), 1.0);  // symmetric
  EXPECT_DOUBLE_EQ(cv.CoVisits(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(cv.CoVisits(0, 2), 0.0);  // not adjacent
}

TEST(CoVisitationTest, SelfLoopsIgnored) {
  data::Dataset d(1, 2);
  d.AddSequence(0, {1, 1, 1});
  CoVisitation cv;
  cv.Fit(d);
  EXPECT_DOUBLE_EQ(cv.CoVisits(1, 1), 0.0);
}

TEST(CoVisitationTest, ScoreUsesUserHistory) {
  data::Dataset d(2, 5);
  d.AddSequence(0, {0, 1});  // user 0 visited 0 and 1
  d.AddSequence(1, {3, 4});
  CoVisitation cv;
  cv.Fit(d);
  // Item 1 co-visits 0 once; for user 1 (history {3,4}) item 1 scores 0.
  auto s0 = cv.Score(0, {1});
  auto s1 = cv.Score(1, {1});
  EXPECT_GT(s0[0], 0.0);
  EXPECT_DOUBLE_EQ(s1[0], 0.0);
}

TEST(CoVisitationTest, InjectedCoVisitsPromote) {
  data::Dataset d(3, 6);
  d.AddSequence(0, {0, 1, 0, 1});
  d.AddSequence(1, {0, 2});
  CoVisitation cv;
  cv.Fit(d);
  // Poison: new user alternates item 0 and cold item 5.
  data::Dataset poison(3, 6);
  poison.AddSequence(2, {0, 5, 0, 5, 0, 5, 0, 5});
  cv.Update(poison);
  // User 1 has item 0 in history; cold item 5 should now score > item 4.
  auto scores = cv.Score(1, {5, 4});
  EXPECT_GT(scores[0], scores[1]);
}

// -- Factor models ----------------------------------------------------------

TEST(PmfTest, LearnsObservedPreferences) {
  // Two disjoint user groups with disjoint item sets.
  data::Dataset d(20, 10);
  Rng rng(77);
  for (data::UserId u = 0; u < 10; ++u) {
    for (int k = 0; k < 8; ++k) d.Add(u, rng.Index(5));  // items 0-4
  }
  for (data::UserId u = 10; u < 20; ++u) {
    for (int k = 0; k < 8; ++k) d.Add(u, 5 + rng.Index(5));  // items 5-9
  }
  FitConfig cfg = FastConfig();
  cfg.epochs = 20;
  Pmf pmf(cfg);
  pmf.Fit(d);
  // Group-0 users should prefer group-0 items.
  int correct = 0;
  for (data::UserId u = 0; u < 10; ++u) {
    auto s = pmf.Score(u, {2, 7});
    if (s[0] > s[1]) ++correct;
  }
  EXPECT_GE(correct, 8);
}

TEST(BprTest, RanksPositivesAboveUnseen) {
  data::Dataset d(20, 10);
  Rng rng(78);
  for (data::UserId u = 0; u < 10; ++u) {
    for (int k = 0; k < 8; ++k) d.Add(u, rng.Index(5));
  }
  for (data::UserId u = 10; u < 20; ++u) {
    for (int k = 0; k < 8; ++k) d.Add(u, 5 + rng.Index(5));
  }
  FitConfig cfg = FastConfig();
  cfg.epochs = 20;
  Bpr bpr(cfg);
  bpr.Fit(d);
  int correct = 0;
  for (data::UserId u = 10; u < 20; ++u) {
    auto s = bpr.Score(u, {7, 2});
    if (s[0] > s[1]) ++correct;
  }
  EXPECT_GE(correct, 8);
}

TEST(FactorModelTest, SampleNegativeAvoidsPositives) {
  std::unordered_set<data::ItemId> positives = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(79);
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    if (positives.count(SampleNegative(10, positives, &rng)) > 0) ++hits;
  }
  // 8 rejection attempts over 80% positives: a few fallbacks are expected,
  // but most draws must be genuine negatives.
  EXPECT_LT(hits, 60);
}

}  // namespace
}  // namespace poisonrec::rec
