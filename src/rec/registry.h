// Name-based factory for the 8 ranker testbeds.
#ifndef POISONREC_REC_REGISTRY_H_
#define POISONREC_REC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "rec/recommender.h"
#include "util/status.h"

namespace poisonrec::rec {

/// Canonical names of all 8 algorithms, in the paper's table order:
/// ItemPop, CoVisitation, PMF, BPR, NeuMF, AutoRec, GRU4Rec, NGCF.
const std::vector<std::string>& AllRecommenderNames();

/// The paper's 8 plus the extra classic baselines this library ships
/// (currently ItemKNN).
const std::vector<std::string>& ExtendedRecommenderNames();

/// Constructs a ranker by (case-insensitive) name.
StatusOr<std::unique_ptr<Recommender>> MakeRecommender(
    const std::string& name, const FitConfig& config = FitConfig());

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_REGISTRY_H_
