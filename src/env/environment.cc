#include "env/environment.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::env {

AttackEnvironment::AttackEnvironment(const data::Dataset& base,
                                     std::unique_ptr<rec::Recommender> ranker,
                                     const EnvironmentConfig& config)
    : config_(config),
      num_original_items_(base.num_items()),
      num_real_users_(base.num_users()),
      dataset_(base.num_users() + config.num_attackers,
               base.num_items() + config.num_target_items),
      ranker_(std::move(ranker)) {
  POISONREC_CHECK(ranker_ != nullptr);
  POISONREC_CHECK_GT(config_.num_target_items, 0u);
  // Copy the clean log into the expanded id space (target items and
  // attacker users exist but start cold).
  for (data::UserId u = 0; u < base.num_users(); ++u) {
    dataset_.AddSequence(u, base.Sequence(u));
  }
  for (std::size_t t = 0; t < config_.num_target_items; ++t) {
    target_items_.push_back(num_original_items_ + t);
  }
  if (config_.personalized_candidates) {
    candidates_ = std::make_unique<rec::PersonalizedCandidateGenerator>(
        dataset_, num_original_items_, target_items_,
        config_.num_candidate_originals);
  } else {
    candidates_ = std::make_unique<rec::RandomCandidateGenerator>(
        num_original_items_, target_items_,
        config_.num_candidate_originals, config_.seed);
  }

  // Evaluate on real users that have history.
  std::vector<data::UserId> users;
  for (data::UserId u = 0; u < num_real_users_; ++u) {
    if (!dataset_.Sequence(u).empty()) users.push_back(u);
  }
  if (config_.max_eval_users > 0 && users.size() > config_.max_eval_users) {
    Rng rng(config_.seed ^ 0x1234567ull);
    rng.Shuffle(&users);
    users.resize(config_.max_eval_users);
    std::sort(users.begin(), users.end());
  }
  eval_users_ = std::move(users);

  ranker_->Fit(dataset_);
}

data::UserId AttackEnvironment::AttackerUserId(
    std::size_t attacker_index) const {
  POISONREC_CHECK_LT(attacker_index, config_.num_attackers);
  return num_real_users_ + attacker_index;
}

data::Dataset AttackEnvironment::BuildPoisonLog(
    const std::vector<Trajectory>& trajectories) const {
  data::Dataset poison(dataset_.num_users(), dataset_.num_items());
  for (const Trajectory& traj : trajectories) {
    POISONREC_CHECK_LT(traj.attacker_index, config_.num_attackers)
        << "trajectory for unknown attacker";
    const data::UserId user = AttackerUserId(traj.attacker_index);
    for (data::ItemId item : traj.items) {
      POISONREC_CHECK_LT(item, dataset_.num_items())
          << "trajectory references unknown item";
      poison.Add(user, item);
    }
  }
  return poison;
}

double AttackEnvironment::RecNum(const rec::Recommender& ranker) const {
  const std::unordered_set<data::ItemId> targets(target_items_.begin(),
                                                 target_items_.end());
  double rec_num = 0.0;
  for (data::UserId u : eval_users_) {
    const std::vector<data::ItemId> cands = candidates_->Candidates(u);
    const std::vector<data::ItemId> top =
        ranker.RecommendTopK(u, cands, config_.top_k);
    for (data::ItemId item : top) {
      if (targets.count(item) > 0) rec_num += 1.0;
    }
  }
  return rec_num;
}

double AttackEnvironment::Evaluate(
    const std::vector<Trajectory>& trajectories) const {
  std::unique_ptr<rec::Recommender> poisoned = ranker_->Clone();
  data::Dataset poison = BuildPoisonLog(trajectories);
  if (poison.num_interactions() > 0) {
    if (config_.full_retrain) {
      // Ablation mode: retrain from scratch on clean + poison.
      data::Dataset combined = dataset_.Clone();
      for (data::UserId u = 0; u < poison.num_users(); ++u) {
        combined.AddSequence(u, poison.Sequence(u));
      }
      poisoned->Fit(combined);
    } else {
      // Algorithm 1: reload the pretrained ranker, update with D^p.
      poisoned->Update(poison);
    }
  }
  return RecNum(*poisoned);
}

}  // namespace poisonrec::env
