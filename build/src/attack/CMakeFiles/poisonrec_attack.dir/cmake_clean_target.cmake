file(REMOVE_RECURSE
  "libpoisonrec_attack.a"
)
