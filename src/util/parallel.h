// Minimal data parallelism: a blocking parallel-for over an index range,
// executed on a persistent worker pool. Used for the M independent
// reward queries and episode rollouts of a PoisonRec training step and
// for the row partitions of the GEMM kernels in src/nn/kernels.cc.
//
// The pool is process-global and lazily grown: the first ParallelFor
// that wants N-way execution spawns up to N-1 helper threads which then
// stay parked for later calls, so steady-state training pays no
// thread-spawn cost per step (the old implementation spawned and joined
// fresh threads on every call).
#ifndef POISONREC_UTIL_PARALLEL_H_
#define POISONREC_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace poisonrec {

/// Runs fn(0) .. fn(count-1), splitting indices across up to
/// `num_threads` workers (0 = hardware concurrency). Blocks until every
/// call returns. Falls back to the calling thread when count <= 1 or one
/// thread is requested. fn must be safe to invoke concurrently for
/// distinct indices.
///
/// The calling thread always participates in the work, so progress is
/// guaranteed even if no helper thread is available. Nested ParallelFor
/// calls issued from inside a worker run inline on that worker (no
/// re-entrant pool submission), which keeps e.g. a threaded GEMM inside
/// a parallel episode rollout deadlock-free.
///
/// If fn throws, remaining indices are abandoned and the first exception
/// is rethrown on the calling thread after all participants have
/// finished. The pool stays usable afterwards.
void ParallelFor(std::size_t count, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn);

/// True while the current thread is executing inside a ParallelFor —
/// as a pool helper or as the submitting thread participating in its
/// own job. Nested ParallelFor calls run inline in that case.
bool InParallelWorker();

namespace internal {
/// Number of helper threads currently parked in the global pool
/// (diagnostics / tests only).
std::size_t PoolThreadCount();
}  // namespace internal

}  // namespace poisonrec

#endif  // POISONREC_UTIL_PARALLEL_H_
