#include "core/trajectory.h"

namespace poisonrec::core {

std::vector<env::Trajectory> ToEnvTrajectories(
    const std::vector<SampledTrajectory>& trajectories) {
  std::vector<env::Trajectory> out;
  out.reserve(trajectories.size());
  for (const SampledTrajectory& traj : trajectories) {
    env::Trajectory t;
    t.attacker_index = traj.attacker_index;
    t.items.reserve(traj.steps.size());
    for (const SampledStep& step : traj.steps) {
      t.items.push_back(step.item);
    }
    out.push_back(std::move(t));
  }
  return out;
}

double TargetClickRatio(const Episode& episode,
                        data::ItemId first_target_item) {
  std::size_t total = 0;
  std::size_t on_target = 0;
  for (const SampledTrajectory& traj : episode.trajectories) {
    for (const SampledStep& step : traj.steps) {
      ++total;
      if (step.item >= first_target_item) ++on_target;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(on_target) /
                          static_cast<double>(total);
}

}  // namespace poisonrec::core
