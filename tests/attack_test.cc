// Baseline attack tests: budget conformance, method-specific structure,
// and effectiveness sanity (ConsLOP on CoVisitation; AppGrad improves on
// random; every method promotes on ItemPop).
#include "attack/appgrad.h"
#include "attack/conslop.h"
#include "attack/heuristics.h"
#include "attack/poisonrec_attack.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rec/registry.h"

namespace poisonrec::attack {
namespace {

data::Dataset SmallLog() {
  data::SyntheticConfig cfg;
  cfg.num_users = 80;
  cfg.num_items = 60;
  cfg.num_interactions = 400;
  cfg.seed = 23;
  return data::GenerateSynthetic(cfg);
}

env::EnvironmentConfig SmallConfig() {
  env::EnvironmentConfig cfg;
  cfg.num_attackers = 8;
  cfg.trajectory_length = 10;
  cfg.num_target_items = 4;
  cfg.num_candidate_originals = 20;
  cfg.top_k = 5;
  cfg.seed = 29;
  return cfg;
}

std::unique_ptr<env::AttackEnvironment> MakeEnv(
    const std::string& ranker = "ItemPop") {
  rec::FitConfig fit;
  fit.embedding_dim = 8;
  fit.epochs = 3;
  fit.update_epochs = 3;
  return std::make_unique<env::AttackEnvironment>(
      SmallLog(), rec::MakeRecommender(ranker, fit).value(), SmallConfig());
}

void ExpectBudgetConformance(const std::vector<env::Trajectory>& attack,
                             const env::AttackEnvironment& env) {
  ASSERT_EQ(attack.size(), env.num_attackers());
  std::unordered_set<std::size_t> seen;
  for (const auto& t : attack) {
    EXPECT_TRUE(seen.insert(t.attacker_index).second);
    EXPECT_LT(t.attacker_index, env.num_attackers());
    EXPECT_EQ(t.items.size(), env.trajectory_length());
    for (data::ItemId item : t.items) {
      EXPECT_LT(item, env.num_total_items());
    }
  }
}

class HeuristicAttackTest
    : public ::testing::TestWithParam<std::shared_ptr<AttackMethod>> {};

TEST_P(HeuristicAttackTest, BudgetConformance) {
  auto env = MakeEnv();
  auto attack = GetParam()->GenerateAttack(*env, 1);
  ExpectBudgetConformance(attack, *env);
}

TEST_P(HeuristicAttackTest, DeterministicInSeed) {
  auto env = MakeEnv();
  auto a = GetParam()->GenerateAttack(*env, 5);
  auto b = GetParam()->GenerateAttack(*env, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items);
  }
}

TEST_P(HeuristicAttackTest, PromotesTargetsOnItemPop) {
  auto env = MakeEnv();
  auto attack = GetParam()->GenerateAttack(*env, 2);
  EXPECT_GT(env->Evaluate(attack), env->BaselineRecNum())
      << GetParam()->Name();
}

INSTANTIATE_TEST_SUITE_P(
    Methods, HeuristicAttackTest,
    ::testing::Values(std::make_shared<RandomAttack>(),
                      std::make_shared<PopularAttack>(),
                      std::make_shared<MiddleAttack>(),
                      std::make_shared<PowerItemAttack>()),
    [](const auto& info) { return info.param->Name(); });

TEST(RandomAttackTest, AlternatesTargetAndOriginal) {
  auto env = MakeEnv();
  RandomAttack attack;
  auto trajs = attack.GenerateAttack(*env, 3);
  for (const auto& t : trajs) {
    for (std::size_t i = 0; i < t.items.size(); ++i) {
      if (i % 2 == 0) {
        EXPECT_GE(t.items[i], env->num_original_items());  // target
      } else {
        EXPECT_LT(t.items[i], env->num_original_items());  // original
      }
    }
  }
}

TEST(PopularAttackTest, OriginalClicksAreTopDecile) {
  auto env = MakeEnv();
  const auto& pop = env->item_popularity();
  // Threshold: the popularity of the weakest top-10% item.
  std::vector<std::size_t> sorted;
  for (data::ItemId i = 0; i < env->num_original_items(); ++i) {
    sorted.push_back(pop[i]);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  const std::size_t pool =
      std::max<std::size_t>(1, env->num_original_items() / 10);
  const std::size_t threshold = sorted[pool - 1];

  PopularAttack attack;
  auto trajs = attack.GenerateAttack(*env, 4);
  for (const auto& t : trajs) {
    for (std::size_t i = 1; i < t.items.size(); i += 2) {
      EXPECT_GE(pop[t.items[i]], threshold);
    }
  }
}

TEST(MiddleAttackTest, CanClickTargetsConsecutively) {
  // The paper singles this property out: Middle may click several targets
  // in a row. Verify it happens across a few seeds.
  auto env = MakeEnv();
  MiddleAttack attack;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 10 && !found; ++seed) {
    for (const auto& t : attack.GenerateAttack(*env, seed)) {
      for (std::size_t i = 0; i + 1 < t.items.size(); ++i) {
        if (t.items[i] >= env->num_original_items() &&
            t.items[i + 1] >= env->num_original_items()) {
          found = true;
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(PowerItemTest, InDegreeCentrality) {
  data::Dataset d(2, 4);
  d.AddSequence(0, {0, 2, 1, 2});
  d.AddSequence(1, {3, 2});
  auto c = PowerItemAttack::InDegreeCentrality(d);
  // Item 2 has predecessors {0, 1, 3} = 3 distinct.
  EXPECT_EQ(c[2], 3u);
  EXPECT_EQ(c[1], 1u);  // predecessor {2}
  EXPECT_EQ(c[0], 0u);
}

TEST(ConsLopTest, PlanRespectsBudget) {
  auto env = MakeEnv("CoVisitation");
  ConsLopAttack attack;
  auto plan = attack.Solve(*env);
  std::size_t total = 0;
  for (const auto& e : plan) total += e.covisit_count;
  EXPECT_LE(total,
            env->num_attackers() * env->trajectory_length() / 2);
  EXPECT_FALSE(plan.empty());
}

TEST(ConsLopTest, SingleTargetOnly) {
  auto env = MakeEnv("CoVisitation");
  ConsLopAttack attack;
  auto trajs = attack.GenerateAttack(*env, 7);
  ExpectBudgetConformance(trajs, *env);
  const data::ItemId target = env->target_items().front();
  for (const auto& t : trajs) {
    for (data::ItemId item : t.items) {
      // Every click is either the single promoted target or an original.
      EXPECT_TRUE(item == target || item < env->num_original_items());
    }
  }
}

TEST(ConsLopTest, BeatsRandomOnCoVisitationSingleTarget) {
  // ConsLOP is purpose-built for CoVisitation but promotes a single item
  // (its original setting). On a single-target environment it should
  // clearly beat the Random heuristic (paper Table III).
  rec::FitConfig fit;
  env::EnvironmentConfig cfg = SmallConfig();
  cfg.num_target_items = 1;
  env::AttackEnvironment env(
      SmallLog(), rec::MakeRecommender("CoVisitation", fit).value(), cfg);
  ConsLopAttack conslop;
  RandomAttack random;
  const double conslop_rec = env.Evaluate(conslop.GenerateAttack(env, 8));
  const double random_rec = env.Evaluate(random.GenerateAttack(env, 8));
  EXPECT_GT(conslop_rec, random_rec);
}

TEST(AppGradTest, BudgetConformance) {
  auto env = MakeEnv();
  AppGradConfig cfg;
  cfg.iterations = 3;
  AppGradAttack attack(cfg);
  auto trajs = attack.GenerateAttack(*env, 9);
  ExpectBudgetConformance(trajs, *env);
}

TEST(AppGradTest, OptimizationDoesNotRegress) {
  // AppGrad keeps the best-seen matrix, so more iterations can only help.
  auto env = MakeEnv();
  AppGradConfig none;
  none.iterations = 0;
  AppGradConfig some;
  some.iterations = 12;
  const double before =
      env->Evaluate(AppGradAttack(none).GenerateAttack(*env, 10));
  const double after =
      env->Evaluate(AppGradAttack(some).GenerateAttack(*env, 10));
  EXPECT_GE(after, before * 0.9);  // allow rounding jitter
  EXPECT_GT(after, env->BaselineRecNum());
}

TEST(PoisonRecAttackTest, AdapterConformsAndLearns) {
  auto env = MakeEnv();
  core::PoisonRecConfig cfg;
  cfg.samples_per_step = 4;
  cfg.batch_size = 4;
  cfg.update_epochs = 2;
  cfg.policy.embedding_dim = 8;
  PoisonRecAttack attack(cfg, /*training_steps=*/3);
  auto trajs = attack.GenerateAttack(*env, 11);
  ExpectBudgetConformance(trajs, *env);
  EXPECT_EQ(attack.last_training_stats().size(), 3u);
  EXPECT_GT(env->Evaluate(trajs), env->BaselineRecNum());
}

}  // namespace
}  // namespace poisonrec::attack
