#include "rec/registry.h"

#include <cctype>

#include "rec/autorec.h"
#include "rec/bpr.h"
#include "rec/covisitation.h"
#include "rec/gru4rec.h"
#include "rec/itemknn.h"
#include "rec/itempop.h"
#include "rec/neumf.h"
#include "rec/ngcf.h"
#include "rec/pmf.h"

namespace poisonrec::rec {

const std::vector<std::string>& AllRecommenderNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{"ItemPop", "CoVisitation", "PMF", "BPR",
                                   "NeuMF",   "AutoRec",      "GRU4Rec",
                                   "NGCF"};
  return *kNames;
}

const std::vector<std::string>& ExtendedRecommenderNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>(AllRecommenderNames());
    names->push_back("ItemKNN");
    return names;
  }();
  return *kNames;
}

StatusOr<std::unique_ptr<Recommender>> MakeRecommender(
    const std::string& name, const FitConfig& config) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "itempop") {
    return std::unique_ptr<Recommender>(new ItemPop(config));
  }
  if (lower == "covisitation" || lower == "covisit") {
    return std::unique_ptr<Recommender>(new CoVisitation(config));
  }
  if (lower == "pmf") {
    return std::unique_ptr<Recommender>(new Pmf(config));
  }
  if (lower == "bpr") {
    return std::unique_ptr<Recommender>(new Bpr(config));
  }
  if (lower == "neumf") {
    return std::unique_ptr<Recommender>(new NeuMf(config));
  }
  if (lower == "autorec") {
    return std::unique_ptr<Recommender>(new AutoRec(config));
  }
  if (lower == "gru4rec") {
    return std::unique_ptr<Recommender>(new Gru4Rec(config));
  }
  if (lower == "ngcf") {
    return std::unique_ptr<Recommender>(new Ngcf(config));
  }
  if (lower == "itemknn") {
    return std::unique_ptr<Recommender>(new ItemKnn(config));
  }
  return Status::NotFound("unknown recommender '" + name + "'");
}

}  // namespace poisonrec::rec
