#include "nn/optimizer.h"

#include <cmath>

namespace poisonrec::nn {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    POISONREC_CHECK(p.requires_grad())
        << "optimizer parameter does not require grad";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float weight_decay)
    : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (Tensor& p : params_) {
    if (p.grad().empty()) continue;
    std::vector<float>& data = p.mutable_data();
    const std::vector<float>& grad = p.grad();
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] -= lr_ * (grad[i] + weight_decay_ * data[i]);
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0f);
    v_[i].assign(params_[i].size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().empty()) continue;
    std::vector<float>& data = p.mutable_data();
    const std::vector<float>& grad = p.grad();
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    for (std::size_t j = 0; j < data.size(); ++j) {
      const float g = grad[j] + weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      data[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

Status Adam::RestoreState(std::size_t step_count,
                          std::vector<std::vector<float>> m,
                          std::vector<std::vector<float>> v) {
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument(
        "Adam state has " + std::to_string(m.size()) + "/" +
        std::to_string(v.size()) + " moment vectors, model has " +
        std::to_string(params_.size()) + " parameters");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (m[i].size() != params_[i].size() || v[i].size() != params_[i].size()) {
      return Status::InvalidArgument("Adam moment size mismatch at parameter " +
                                     std::to_string(i));
    }
  }
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

float GradNorm(const std::vector<Tensor>& params) {
  double sq = 0.0;
  for (const Tensor& p : params) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  return static_cast<float>(std::sqrt(sq));
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  const float norm = GradNorm(params);
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Tensor& p : params) {
      // grad buffers are mutable through the shared impl
      auto& grad = const_cast<Tensor&>(p).mutable_grad();
      for (float& g : grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace poisonrec::nn
